// MinerService: a PredictionService with the incremental miner closed over
// it — the deployment that retires the offline retrain. It owns the live
// HELO classifier (producer-thread incremental template learning), taps the
// classified-event stream off every shard worker through per-shard lossless
// SPSC rings (blocking push: the miner must see EVERY event or the
// online≡batch equivalence is void), folds the merged stream on one pump
// thread, and publishes refreshed rule models into the serving engines
// through the RCU-style ModelHub — shard workers hot-swap at batch
// boundaries without ever blocking the predict path.
//
//   producer -> PredictionService -> shard workers --feed--> predictions
//                  | live HELO          | publish(shard, ev)   blocking SPSC
//                  v                SpscRing[shard]
//              template ids             | try_pop              pump thread
//                                  watermark merge -> OnlineMiner.fold
//                                       | every publish_every folds
//                                  ModelHub.publish  ==RCU==>  shard swap
//
// Determinism across shard counts: each shard's event stream is
// time-monotone (one producer submits in trace order), so the pump folds
// only events strictly below the watermark — the minimum shard clock over
// *reachable* shards (a shard no partition routes to would pin the
// watermark at -inf forever) — sorted by the canonical event order. The
// resulting fold sequence equals the canonically sorted whole trace,
// whatever the shard count: `elsa mine --check` proves it by digest.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "mining/miner.hpp"
#include "serve/service.hpp"
#include "serve/spsc_ring.hpp"

namespace elsa::mining {

struct MinerServiceConfig {
  /// Base serving configuration; its live_classifier / hub / event_tap
  /// fields are overwritten with the miner's own hooks.
  serve::ServiceConfig serve;
  MinerConfig miner;
  helo::MinerConfig classifier;
  /// Per-shard event ring capacity. Pushes BLOCK when full (bounded
  /// backpressure onto the shard worker): the mined stream is lossless by
  /// contract.
  std::size_t ring_capacity = 8192;
  /// Publish a refreshed model into the hub every this many folded events;
  /// 0 = mine silently and only materialise the final model at finish().
  /// A fold-count boundary (never wall clock) keeps the publish stream —
  /// and therefore the publish digest — identical across shard counts.
  std::size_t publish_every = 4096;
};

class MinerService final : public serve::EventTap {
 public:
  explicit MinerService(const topo::Topology& topo,
                        MinerServiceConfig cfg = {});
  ~MinerService() override;

  MinerService(const MinerService&) = delete;
  MinerService& operator=(const MinerService&) = delete;

  /// The underlying serving endpoint (submit records here — ONE producer
  /// thread, the live-classifier contract).
  serve::PredictionService& service() { return *service_; }
  const serve::PredictionService& service() const { return *service_; }

  /// EventTap: per-shard lossless hand-off (shard workers call this; a
  /// full ring blocks until the pump catches up).
  void publish(std::size_t shard, const serve::ClassifiedEvent& e) override;

  /// Finish the service (drain + merge), then drain the miner: after this
  /// returns every tapped event has been folded, the final model is built
  /// (classifier embedded) and digested. Idempotent.
  void finish(std::int64_t t_end_ms);

  /// Final mined model (valid after finish()).
  const core::OfflineModel& final_model() const { return final_model_; }
  /// Digest of the final model — the online≡batch gate's primary witness.
  std::uint64_t final_digest() const { return final_digest_; }
  /// Chained digest over every interim hub publish (second witness: the
  /// whole publish *stream*, not just the end state, matches batch).
  std::uint64_t publish_stream_digest() const { return publish_digest_; }
  std::uint64_t publishes() const { return publishes_; }
  /// Events folded by the miner (== events tapped once finished).
  std::uint64_t folded() const { return miner_.folded(); }

  /// The live classifier (stable address for the service's lifetime).
  const helo::TemplateMiner& classifier() const { return live_; }
  serve::ModelHub& hub() { return hub_; }

 private:
  void pump_loop();
  void drain_rings(bool& any);
  /// Fold every pending event strictly below `watermark_ms`, in canonical
  /// order, publishing at fold-count boundaries. Pump thread only.
  void fold_below(std::int64_t watermark_ms);
  void publish_model();
  std::int64_t watermark() const;

  // Declaration order is teardown order in reverse: service_ (declared
  // last) destroys FIRST, while the rings/hub/classifier its workers may
  // still touch during teardown are alive until after it is gone.
  helo::TemplateMiner live_;
  serve::ModelHub hub_;
  std::vector<std::unique_ptr<serve::SpscRing<serve::ClassifiedEvent>>> rings_;
  OnlineMiner miner_;                    ///< pump thread, then controlling
  std::vector<bool> reachable_;          ///< shards some partition routes to
  std::vector<std::int64_t> shard_clock_;               ///< pump thread only
  std::vector<std::vector<serve::ClassifiedEvent>> pending_;  ///< pump only
  std::vector<serve::ClassifiedEvent> scratch_;               ///< pump only
  std::uint64_t publish_digest_ = 0;     ///< pump thread, then controlling
  std::uint64_t publishes_ = 0;          ///< pump thread, then controlling
  std::size_t publish_every_ = 0;
  core::OfflineModel empty_model_;       ///< service ctor model (no rules)
  serve::ServeMetrics* metrics_ = nullptr;  ///< service_'s, cached
  std::unique_ptr<serve::PredictionService> service_;
  // elsa-atomic: release-acquire-flag — finish()'s release store is the
  // pump thread's acquire-loaded exit signal.
  std::atomic<bool> stop_{false};
  std::thread pump_;
  bool finished_ = false;  ///< controlling thread only
  core::OfflineModel final_model_;       ///< controlling thread, post-join
  std::uint64_t final_digest_ = 0;
};

}  // namespace elsa::mining
