// Haar discrete wavelet transform with soft-threshold denoising. The
// offline phase uses it to characterise each signal's "normal behaviour"
// (paper §III.A: "we use wavelets and filtering to characterize the normal
// behavior for each of them"): the denoised reconstruction is the baseline
// against which the outlier thresholds are calibrated.
#pragma once

#include <cstddef>
#include <vector>

namespace elsa::sigkit {

/// Multi-level in-place Haar DWT. Output layout after `levels` passes:
/// [approx | detail_levels...] in the standard pyramid ordering. The input
/// size must be divisible by 2^levels; throws otherwise.
void haar_forward(std::vector<double>& x, std::size_t levels);

/// Inverse of haar_forward with the same `levels`.
void haar_inverse(std::vector<double>& x, std::size_t levels);

/// Largest level count usable for a given size (stops at odd lengths).
std::size_t max_haar_levels(std::size_t n);

/// Wavelet denoising: forward transform, soft-threshold the detail
/// coefficients with the universal threshold sigma*sqrt(2 ln n) (sigma
/// estimated from the finest-level details via MAD), inverse transform.
/// Input of any size is handled by zero-padding to an even multiple.
std::vector<double> wavelet_denoise(const std::vector<double>& x,
                                    std::size_t levels = 4);

}  // namespace elsa::sigkit
