// Time-domain filters used by the characterisation and outlier modules.
#pragma once

#include <cstddef>
#include <vector>

namespace elsa::sigkit {

/// Centered moving average with window `2*half+1` (edges use the available
/// samples only).
std::vector<double> moving_average(const std::vector<double>& x,
                                   std::size_t half);

/// Causal median filter: out[i] = median(x[max(0,i-window+1) .. i]).
/// This is the offline counterpart of the online detector's moving-median.
std::vector<double> causal_median(const std::vector<double>& x,
                                  std::size_t window);

/// Sum-pooling downsample by an integer factor (counting signals add).
std::vector<double> downsample_sum(const std::vector<double>& x,
                                   std::size_t factor);

}  // namespace elsa::sigkit
