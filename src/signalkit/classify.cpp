#include "signalkit/classify.hpp"

#include <algorithm>

#include "signalkit/fft.hpp"

namespace elsa::sigkit {

const char* to_string(SignalClass c) {
  switch (c) {
    case SignalClass::Periodic: return "periodic";
    case SignalClass::Noise: return "noise";
    case SignalClass::Silent: return "silent";
  }
  return "?";
}

ClassifyResult classify_signal(const std::vector<double>& x,
                               const ClassifierConfig& cfg) {
  ClassifyResult r;
  if (x.empty()) return r;

  std::size_t nonzero = 0;
  for (double v : x)
    if (v != 0.0) ++nonzero;
  r.occupancy = static_cast<double>(nonzero) / static_cast<double>(x.size());
  if (r.occupancy <= cfg.silent_occupancy) {
    r.cls = SignalClass::Silent;
    return r;
  }

  const std::size_t max_lag = std::min(cfg.max_period, x.size() / 2);
  auto acf = autocorrelation(x, max_lag);
  // Real heartbeats jitter by a sample or two, smearing the ACF peak over
  // neighbouring lags; a narrow triangular smoothing restores it.
  if (acf.size() > 4) {
    std::vector<double> smooth(acf.size());
    for (std::size_t k = 1; k + 1 < acf.size(); ++k)
      smooth[k] = 0.25 * acf[k - 1] + 0.5 * acf[k] + 0.25 * acf[k + 1];
    smooth[0] = acf[0];
    smooth.back() = acf.back();
    acf = std::move(smooth);
  }
  // Find the dominant peak beyond trivial short-lag correlation. Require a
  // local maximum so a slowly decaying ACF (bursty noise) does not read as
  // periodic. An exactly periodic train peaks at every multiple of its
  // period, so take the EARLIEST local max comparable to the global one —
  // that is the fundamental.
  double global_peak = 0.0;
  for (std::size_t k = std::max<std::size_t>(cfg.min_period, 2);
       k + 1 < acf.size(); ++k)
    if (acf[k] > acf[k - 1] && acf[k] >= acf[k + 1])
      global_peak = std::max(global_peak, acf[k]);
  for (std::size_t k = std::max<std::size_t>(cfg.min_period, 2);
       k + 1 < acf.size(); ++k) {
    if (acf[k] > acf[k - 1] && acf[k] >= acf[k + 1] &&
        acf[k] >= 0.85 * global_peak) {
      r.acf_peak = acf[k];
      r.period = k;
      break;
    }
  }
  r.cls = r.acf_peak >= cfg.periodic_acf_threshold ? SignalClass::Periodic
                                                   : SignalClass::Noise;
  if (r.cls != SignalClass::Periodic) r.period = 0;
  return r;
}

}  // namespace elsa::sigkit
