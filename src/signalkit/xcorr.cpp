#include "signalkit/xcorr.hpp"

#include <algorithm>
#include <cmath>

#include "util/mann_whitney.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace elsa::sigkit {

bool has_near(const OutlierStream& stream, std::int32_t t, std::int32_t tol) {
  const auto it =
      std::lower_bound(stream.begin(), stream.end(), t - tol);
  return it != stream.end() && *it <= t + tol;
}

int count_near(const OutlierStream& stream, std::int32_t t, std::int32_t tol) {
  const auto lo = std::lower_bound(stream.begin(), stream.end(), t - tol);
  const auto hi = std::upper_bound(lo, stream.end(), t + tol);
  return static_cast<int>(hi - lo);
}

std::optional<PairCorrelation> correlate_pair(const OutlierStream& a,
                                              const OutlierStream& b,
                                              std::size_t id_a,
                                              std::size_t id_b,
                                              const XcorrConfig& cfg) {
  if (a.empty() || b.empty()) return std::nullopt;

  // Delay histogram over [0, max_lag].
  std::vector<int> hist(static_cast<std::size_t>(cfg.max_lag) + 1, 0);
  for (const std::int32_t t : a) {
    const auto lo = std::lower_bound(b.begin(), b.end(), t);
    for (auto it = lo; it != b.end() && *it - t <= cfg.max_lag; ++it)
      ++hist[static_cast<std::size_t>(*it - t)];
  }

  // Pick the delay whose alignment window (which widens with the delay, see
  // XcorrConfig::effective_tolerance) collects the most mass, preferring
  // tighter delays on ties. Prefix sums give O(1) window mass.
  std::vector<long> pre(hist.size() + 1, 0);
  for (std::size_t i = 0; i < hist.size(); ++i) pre[i + 1] = pre[i] + hist[i];
  auto window_mass = [&](std::int32_t d) {
    const std::int32_t tol = cfg.effective_tolerance(d);
    const std::int32_t lo = std::max(0, d - tol);
    const std::int32_t hi = std::min(cfg.max_lag, d + tol);
    return pre[static_cast<std::size_t>(hi) + 1] -
           pre[static_cast<std::size_t>(lo)];
  };
  std::int32_t best_delay = 0;
  long best_mass = -1;
  double best_density = -1.0;
  for (std::int32_t d = 0; d <= cfg.max_lag; ++d) {
    const long mass = window_mass(d);
    const double density =
        static_cast<double>(mass) /
        static_cast<double>(2 * cfg.effective_tolerance(d) + 1);
    if (mass > best_mass || (mass == best_mass && density > best_density)) {
      best_mass = mass;
      best_density = density;
      best_delay = d;
    }
  }
  if (best_mass <= 0) return std::nullopt;
  // Refine to the weighted centroid of the winning window: the window scan
  // alone is biased toward small delays (their tolerance, hence their
  // denominator, is smaller).
  {
    const std::int32_t tol0 = cfg.effective_tolerance(best_delay);
    const std::int32_t lo = std::max(0, best_delay - tol0);
    const std::int32_t hi = std::min(cfg.max_lag, best_delay + tol0);
    double wsum = 0.0, sum = 0.0;
    for (std::int32_t k = lo; k <= hi; ++k) {
      wsum += static_cast<double>(hist[static_cast<std::size_t>(k)]) * k;
      sum += static_cast<double>(hist[static_cast<std::size_t>(k)]);
    }
    if (sum > 0.0)
      best_delay = static_cast<std::int32_t>(std::lround(wsum / sum));
  }

  // Support counts each antecedent at most once (a burst of B hits near one
  // A outlier is one co-occurrence, not many).
  const std::int32_t tol = cfg.effective_tolerance(best_delay);
  int support = 0;
  for (const std::int32_t t : a)
    if (has_near(b, t + best_delay, tol)) ++support;

  PairCorrelation pc;
  pc.a = id_a;
  pc.b = id_b;
  pc.delay = best_delay;
  pc.support = support;
  pc.confidence = static_cast<double>(support) / static_cast<double>(a.size());
  if (support < cfg.min_support || pc.confidence < cfg.min_confidence)
    return std::nullopt;

  // Lift gate: alignment must beat chance. With |b| consequent outliers
  // scattered over n samples, a window of width 2*tol+1 catches one with
  // probability ~ |b| * (2*tol+1) / n.
  const double n_samples =
      cfg.total_samples > 0
          ? static_cast<double>(cfg.total_samples)
          : static_cast<double>(std::max(a.back(), b.back())) + 1.0;
  const double p_chance = std::min(
      1.0, static_cast<double>(b.size()) *
               static_cast<double>(2 * tol + 1) / n_samples);
  if (pc.confidence < cfg.min_lift * p_chance) return std::nullopt;
  if (util::binomial_tail_pvalue(static_cast<int>(a.size()), support,
                                 p_chance) > cfg.max_chance_pvalue)
    return std::nullopt;

  // Mann–Whitney: aligned indicators vs indicators at random offsets.
  // Binary samples; the rank-sum test with tie correction reduces to a
  // proportion comparison but keeps the statistical machinery the paper
  // specifies.
  std::vector<double> aligned, background;
  aligned.reserve(a.size());
  background.reserve(a.size());
  util::Rng rng(0x9e37u ^ (id_a * 0x10001u) ^ (id_b << 17));
  const std::int64_t n_total =
      cfg.total_samples > 0
          ? static_cast<std::int64_t>(cfg.total_samples)
          : static_cast<std::int64_t>(std::max(a.back(), b.back())) + 1;
  for (const std::int32_t t : a) {
    aligned.push_back(has_near(b, t + best_delay, tol) ? 1.0 : 0.0);
    const std::int32_t u =
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n_total)));
    background.push_back(has_near(b, u, tol) ? 1.0 : 0.0);
  }
  const auto mw = util::mann_whitney_u(aligned, background);
  pc.significance = 1.0 - mw.p_greater;
  if (pc.significance < cfg.min_significance) return std::nullopt;
  return pc;
}

std::vector<PairCorrelation> correlate_all(
    const std::vector<OutlierStream>& streams, const XcorrConfig& cfg,
    std::size_t parallel_threads) {
  const std::size_t n = streams.size();
  std::vector<std::vector<PairCorrelation>> per_a(n);

  auto do_one = [&](std::size_t i) {
    if (streams[i].empty()) return;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || streams[j].empty()) continue;
      const auto pc = correlate_pair(streams[i], streams[j], i, j, cfg);
      if (!pc) continue;
      // Keep zero-delay pairs once (lower id as antecedent).
      if (pc->delay == 0 && i > j) continue;
      per_a[i].push_back(*pc);
    }
  };

  if (parallel_threads > 1) {
    util::ThreadPool pool(parallel_threads);
    util::parallel_for(
        pool, 0, n, [&](std::size_t i) { do_one(i); }, /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < n; ++i) do_one(i);
  }

  std::vector<PairCorrelation> out;
  for (auto& v : per_a)
    out.insert(out.end(), v.begin(), v.end());
  return out;
}

}  // namespace elsa::sigkit
