// Radix-2 FFT and FFT-based autocorrelation, used by the signal classifier
// to find dominant periodicities (paper Fig 1: periodic vs noise classes).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace elsa::sigkit {

/// In-place iterative radix-2 Cooley–Tukey. `data.size()` must be a power
/// of two (use next_pow2 + zero padding); throws otherwise.
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

std::size_t next_pow2(std::size_t n);

/// Biased autocorrelation r[k] for k in [0, max_lag], normalised so
/// r[0] == 1 (all-zero input yields all-zero output). Computed via FFT of
/// the mean-removed, zero-padded series — O(n log n).
std::vector<double> autocorrelation(const std::vector<double>& x,
                                    std::size_t max_lag);

/// Power spectrum |X_k|^2 of the mean-removed series, bins [0, n_fft/2].
std::vector<double> power_spectrum(const std::vector<double>& x);

}  // namespace elsa::sigkit
