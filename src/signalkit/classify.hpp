// Signal-class characterisation (paper Fig 1): each event type's signal is
// periodic (regular health traffic), noise (irregular but frequent), or
// silent (mostly absent). The class decides how the outlier detector
// thresholds the signal — that per-class treatment is exactly what the
// paper argues pure data-mining methods lack.
#pragma once

#include <cstddef>
#include <vector>

#include "signalkit/signal.hpp"

namespace elsa::sigkit {

enum class SignalClass : unsigned char { Periodic, Noise, Silent };

const char* to_string(SignalClass c);

struct ClassifierConfig {
  /// Occupancy (fraction of non-zero samples) at or below which a signal is
  /// silent. 2 % ~= a few events per hour at 10 s sampling.
  double silent_occupancy = 0.02;
  /// Minimum normalised autocorrelation peak to call a signal periodic.
  double periodic_acf_threshold = 0.30;
  /// Lags searched for the periodic peak, in samples.
  std::size_t min_period = 2;
  std::size_t max_period = 720;  ///< 2 h at 10 s sampling
};

struct ClassifyResult {
  SignalClass cls = SignalClass::Silent;
  double occupancy = 0.0;
  /// Detected period in samples (0 when not periodic).
  std::size_t period = 0;
  /// Peak normalised autocorrelation value at `period`.
  double acf_peak = 0.0;
};

/// Classify one signal from its training samples.
ClassifyResult classify_signal(const std::vector<double>& x,
                               const ClassifierConfig& cfg = {});

inline ClassifyResult classify_signal(const Signal& s,
                                      const ClassifierConfig& cfg = {}) {
  return classify_signal(s.as_doubles(), cfg);
}

}  // namespace elsa::sigkit
