#include "signalkit/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace elsa::sigkit {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n == 0) return;
  if ((n & (n - 1)) != 0)
    throw std::invalid_argument("fft: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

namespace {
double mean_of(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}
}  // namespace

std::vector<double> autocorrelation(const std::vector<double>& x,
                                    std::size_t max_lag) {
  const std::size_t n = x.size();
  max_lag = std::min(max_lag, n > 0 ? n - 1 : 0);
  std::vector<double> r(max_lag + 1, 0.0);
  if (n == 0) return r;

  const double m = mean_of(x);
  // Zero-pad to 2n to make circular convolution equal linear correlation.
  const std::size_t nfft = next_pow2(2 * n);
  std::vector<std::complex<double>> buf(nfft, {0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) buf[i] = {x[i] - m, 0.0};
  fft(buf);
  for (auto& c : buf) c = c * std::conj(c);
  fft(buf, /*inverse=*/true);

  const double r0 = buf[0].real();
  if (r0 <= 0.0) return r;  // constant signal
  for (std::size_t k = 0; k <= max_lag; ++k) r[k] = buf[k].real() / r0;
  return r;
}

std::vector<double> power_spectrum(const std::vector<double>& x) {
  const std::size_t n = x.size();
  if (n == 0) return {};
  const double m = mean_of(x);
  const std::size_t nfft = next_pow2(n);
  std::vector<std::complex<double>> buf(nfft, {0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) buf[i] = {x[i] - m, 0.0};
  fft(buf);
  std::vector<double> p(nfft / 2 + 1);
  for (std::size_t k = 0; k < p.size(); ++k) p[k] = std::norm(buf[k]);
  return p;
}

}  // namespace elsa::sigkit
