#include "signalkit/wavelet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace elsa::sigkit {

namespace {
constexpr double kInvSqrt2 = 0.7071067811865475244;
}

std::size_t max_haar_levels(std::size_t n) {
  std::size_t levels = 0;
  while (n >= 2 && n % 2 == 0) {
    n /= 2;
    ++levels;
  }
  return levels;
}

void haar_forward(std::vector<double>& x, std::size_t levels) {
  std::size_t n = x.size();
  for (std::size_t l = 0; l < levels; ++l) {
    if (n < 2 || n % 2 != 0)
      throw std::invalid_argument("haar_forward: size not divisible");
    std::vector<double> tmp(n);
    const std::size_t half = n / 2;
    for (std::size_t i = 0; i < half; ++i) {
      tmp[i] = (x[2 * i] + x[2 * i + 1]) * kInvSqrt2;
      tmp[half + i] = (x[2 * i] - x[2 * i + 1]) * kInvSqrt2;
    }
    std::copy(tmp.begin(), tmp.end(), x.begin());
    n = half;
  }
}

void haar_inverse(std::vector<double>& x, std::size_t levels) {
  if (levels == 0) return;
  std::size_t n = x.size();
  for (std::size_t l = 0; l < levels; ++l) n /= 2;
  if (n == 0) throw std::invalid_argument("haar_inverse: too many levels");
  for (std::size_t l = 0; l < levels; ++l) {
    const std::size_t half = n;
    n *= 2;
    std::vector<double> tmp(n);
    for (std::size_t i = 0; i < half; ++i) {
      tmp[2 * i] = (x[i] + x[half + i]) * kInvSqrt2;
      tmp[2 * i + 1] = (x[i] - x[half + i]) * kInvSqrt2;
    }
    std::copy(tmp.begin(), tmp.end(), x.begin());
  }
}

std::vector<double> wavelet_denoise(const std::vector<double>& x,
                                    std::size_t levels) {
  if (x.empty()) return {};
  // Pad so the requested number of levels divides evenly.
  const std::size_t unit = std::size_t{1} << levels;
  const std::size_t padded = (x.size() + unit - 1) / unit * unit;
  std::vector<double> w(x);
  w.resize(padded, x.back());

  const std::size_t usable = std::min(levels, max_haar_levels(padded));
  haar_forward(w, usable);

  // Sigma from the finest-detail band (second half of the array after one
  // level; with `usable` levels the finest details live in [n/2, n)).
  const std::size_t n = w.size();
  std::vector<double> fine(w.begin() + static_cast<std::ptrdiff_t>(n / 2),
                           w.end());
  const double sigma = util::mad(fine) / 0.6745;
  const double thresh =
      sigma * std::sqrt(2.0 * std::log(static_cast<double>(n)));

  // Soft-threshold everything except the approximation band.
  const std::size_t approx = n >> usable;
  for (std::size_t i = approx; i < n; ++i) {
    const double a = std::abs(w[i]);
    w[i] = a <= thresh ? 0.0 : (w[i] > 0 ? a - thresh : thresh - a);
  }

  haar_inverse(w, usable);
  w.resize(x.size());
  return w;
}

}  // namespace elsa::sigkit
