// Signal extraction (paper §III.A): every event type becomes a time series
// by sampling its occurrence count per fixed time unit (10 s in the paper
// and here). The SignalSet is the bridge between the log world (records,
// template ids) and the analysis world (vectors of samples).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace elsa::sigkit {

/// Uniformly sampled counting signal.
struct Signal {
  std::int64_t t0_ms = 0;     ///< timestamp of sample 0
  std::int64_t dt_ms = 10000; ///< sample period (10 s default, per paper)
  std::vector<float> v;

  std::size_t size() const { return v.size(); }

  std::int64_t time_of(std::size_t i) const {
    return t0_ms + static_cast<std::int64_t>(i) * dt_ms;
  }
  /// Sample index containing time t (clamped to [0, size)); -1 if empty.
  std::ptrdiff_t index_of(std::int64_t t_ms) const;

  /// Copy of samples as doubles (for the stats helpers).
  std::vector<double> as_doubles() const;

  /// Sub-signal covering sample indices [lo, hi).
  Signal slice(std::size_t lo, std::size_t hi) const;
};

/// One signal per event type, all sharing a common clock.
class SignalSet {
 public:
  SignalSet(std::int64_t t0_ms, std::int64_t t_end_ms, std::int64_t dt_ms,
            std::size_t num_types);

  /// Add one event occurrence of `type` at time t (ignored out of range).
  void add_event(std::size_t type, std::int64_t t_ms);

  std::size_t num_types() const { return signals_.size(); }
  std::size_t samples() const { return samples_; }
  std::int64_t dt_ms() const { return dt_ms_; }
  std::int64_t t0_ms() const { return t0_ms_; }

  const Signal& signal(std::size_t type) const { return signals_.at(type); }
  Signal& signal(std::size_t type) { return signals_.at(type); }

 private:
  std::int64_t t0_ms_;
  std::int64_t dt_ms_;
  std::size_t samples_;
  std::vector<Signal> signals_;
};

}  // namespace elsa::sigkit
