#include "signalkit/filters.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace elsa::sigkit {

std::vector<double> moving_average(const std::vector<double>& x,
                                   std::size_t half) {
  const std::size_t n = x.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  // Prefix sums for O(n) evaluation.
  std::vector<double> pre(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) pre[i + 1] = pre[i] + x[i];
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(n - 1, i + half);
    out[i] = (pre[hi + 1] - pre[lo]) / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> causal_median(const std::vector<double>& x,
                                  std::size_t window) {
  const std::size_t n = x.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  util::SlidingMedian med(std::max<std::size_t>(1, window));
  for (std::size_t i = 0; i < n; ++i) {
    med.push(x[i]);
    out[i] = med.median();
  }
  return out;
}

std::vector<double> downsample_sum(const std::vector<double>& x,
                                   std::size_t factor) {
  if (factor <= 1) return x;
  std::vector<double> out((x.size() + factor - 1) / factor, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) out[i / factor] += x[i];
  return out;
}

}  // namespace elsa::sigkit
