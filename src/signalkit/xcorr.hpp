// Sparse cross-correlation between outlier streams (paper §III.C): the
// signal-analysis half of the hybrid method. Outlier streams are sorted
// sample indices where a signal deviated from its characterised behaviour;
// the cross-correlation function finds, for a pair of streams, the delay at
// which co-occurrence is maximal, and the Mann–Whitney test decides whether
// the alignment beats chance. These pairs both (a) ARE the pure-signal
// baseline's rule set and (b) seed the first level of the gradual-itemset
// miner.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

namespace elsa::sigkit {

/// Sorted, unique sample indices at which a signal was anomalous.
using OutlierStream = std::vector<std::int32_t>;

struct PairCorrelation {
  std::size_t a = 0;       ///< antecedent signal id
  std::size_t b = 0;       ///< consequent signal id
  std::int32_t delay = 0;  ///< samples; b fires `delay` after a (>= 0)
  int support = 0;         ///< aligned co-occurrences
  double confidence = 0.0; ///< support / |a|
  double significance = 0.0;  ///< 1 - p (Mann–Whitney, aligned vs chance)
};

struct XcorrConfig {
  std::int32_t max_lag = 540;   ///< 1.5 h at 10 s sampling
  std::int32_t tolerance = 3;   ///< jitter window around the delay, samples
  /// Long cascades jitter proportionally to their span (the paper observes
  /// confidence decays with delay, §IV.B); the effective alignment window
  /// is tolerance + tolerance_frac * delay, capped at max_tolerance.
  double tolerance_frac = 0.08;
  std::int32_t max_tolerance = 24;  ///< 4 min at 10 s sampling
  int min_support = 4;
  double min_confidence = 0.20;
  double min_significance = 0.95;
  /// Confidence must beat the chance alignment probability by this factor
  /// (association-rule "lift"); kills spurious pairs between chatty
  /// streams whose windows overlap by accident.
  double min_lift = 3.0;
  /// Exact binomial tail gate: the probability of seeing this support by
  /// chance must fall below this. Calibrated for the multiple-testing
  /// burden of scanning all template pairs at all lags.
  double max_chance_pvalue = 1e-7;
  std::size_t total_samples = 0;  ///< length of the underlying signals

  std::int32_t effective_tolerance(std::int32_t delay) const {
    return std::min(max_tolerance,
                    tolerance + static_cast<std::int32_t>(
                                    tolerance_frac *
                                    static_cast<double>(delay)));
  }
};

/// True if `stream` has an element within [t - tol, t + tol].
bool has_near(const OutlierStream& stream, std::int32_t t, std::int32_t tol);

/// Count of elements of `stream` within [t - tol, t + tol].
int count_near(const OutlierStream& stream, std::int32_t t, std::int32_t tol);

/// Directional correlation a -> b. Returns nullopt when below the support /
/// confidence / significance gates. Deterministic (the Mann–Whitney
/// background sample is seeded from the ids).
std::optional<PairCorrelation> correlate_pair(const OutlierStream& a,
                                              const OutlierStream& b,
                                              std::size_t id_a,
                                              std::size_t id_b,
                                              const XcorrConfig& cfg);

/// All significant directed pairs among `streams` (skips self-pairs; for
/// delay-0 duplicates keeps the direction with the lower id first).
/// `parallel_threads` > 1 evaluates pairs on a thread pool.
std::vector<PairCorrelation> correlate_all(
    const std::vector<OutlierStream>& streams, const XcorrConfig& cfg,
    std::size_t parallel_threads = 1);

}  // namespace elsa::sigkit
