#include "signalkit/signal.hpp"

#include <algorithm>

namespace elsa::sigkit {

std::ptrdiff_t Signal::index_of(std::int64_t t_ms) const {
  if (v.empty()) return -1;
  const std::int64_t idx = (t_ms - t0_ms) / dt_ms;
  return std::clamp<std::int64_t>(idx, 0,
                                  static_cast<std::int64_t>(v.size()) - 1);
}

std::vector<double> Signal::as_doubles() const {
  return std::vector<double>(v.begin(), v.end());
}

Signal Signal::slice(std::size_t lo, std::size_t hi) const {
  Signal out;
  lo = std::min(lo, v.size());
  hi = std::clamp(hi, lo, v.size());
  out.t0_ms = t0_ms + static_cast<std::int64_t>(lo) * dt_ms;
  out.dt_ms = dt_ms;
  out.v.assign(v.begin() + static_cast<std::ptrdiff_t>(lo),
               v.begin() + static_cast<std::ptrdiff_t>(hi));
  return out;
}

SignalSet::SignalSet(std::int64_t t0_ms, std::int64_t t_end_ms,
                     std::int64_t dt_ms, std::size_t num_types)
    : t0_ms_(t0_ms), dt_ms_(dt_ms) {
  samples_ = t_end_ms > t0_ms
                 ? static_cast<std::size_t>((t_end_ms - t0_ms + dt_ms - 1) / dt_ms)
                 : 0;
  signals_.resize(num_types);
  for (auto& s : signals_) {
    s.t0_ms = t0_ms_;
    s.dt_ms = dt_ms_;
    s.v.assign(samples_, 0.0f);
  }
}

void SignalSet::add_event(std::size_t type, std::int64_t t_ms) {
  if (type >= signals_.size()) return;
  const std::int64_t idx = (t_ms - t0_ms_) / dt_ms_;
  if (idx < 0 || idx >= static_cast<std::int64_t>(samples_)) return;
  signals_[type].v[static_cast<std::size_t>(idx)] += 1.0f;
}

}  // namespace elsa::sigkit
