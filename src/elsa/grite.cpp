#include "elsa/grite.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "util/mann_whitney.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace elsa::core {

std::int32_t grite_effective_tolerance(std::int32_t tolerance,
                                       double tolerance_frac,
                                       std::int32_t delay, std::int32_t cap) {
  return std::min(cap,
                  tolerance + static_cast<std::int32_t>(
                                  tolerance_frac * static_cast<double>(delay)));
}

bool grite_delay_consistent(std::int32_t got, std::int32_t want,
                            std::int32_t tolerance, double tolerance_frac) {
  return std::abs(got - want) <=
         tolerance + static_cast<std::int32_t>(
                         tolerance_frac * static_cast<double>(want));
}

namespace {

std::int32_t eff_tol(std::int32_t tolerance, double frac, std::int32_t delay,
                     std::int32_t cap = 24) {
  return grite_effective_tolerance(tolerance, frac, delay, cap);
}

bool all_items_near(const std::vector<ChainItem>& items,
                    const std::vector<sigkit::OutlierStream>& streams,
                    std::int32_t t, std::int32_t tolerance, double frac) {
  for (std::size_t j = 1; j < items.size(); ++j) {
    if (!sigkit::has_near(streams[items[j].signal], t + items[j].delay,
                          eff_tol(tolerance, frac, items[j].delay)))
      return false;
  }
  return true;
}

/// Canonical string key of an itemset's signals+delays (for deduplication).
std::string itemset_key(const std::vector<ChainItem>& items) {
  std::string key;
  key.reserve(items.size() * 10);
  for (const auto& it : items) {
    key += std::to_string(it.signal);
    key += ':';
    key += std::to_string(it.delay);
    key += ';';
  }
  return key;
}

/// Prefix key: all items except the last.
std::string prefix_key(const std::vector<ChainItem>& items) {
  std::vector<ChainItem> pre(items.begin(), items.end() - 1);
  return itemset_key(pre);
}

/// True if `small` is subsumed by `big`: every (signal, relative delay) of
/// `small` appears in `big` within tolerance (after aligning on small's
/// first signal).
bool subsumes(const Chain& big, const Chain& small, std::int32_t tolerance,
              double frac) {
  if (big.items.size() <= small.items.size()) return false;
  // Find the anchor: big's item with small's first signal.
  std::int32_t anchor = -1;
  for (const auto& bi : big.items)
    if (bi.signal == small.items.front().signal) {
      anchor = bi.delay;
      break;
    }
  if (anchor < 0) return false;
  for (const auto& si : small.items) {
    bool found = false;
    for (const auto& bi : big.items) {
      if (bi.signal == si.signal &&
          std::abs((bi.delay - anchor) - si.delay) <=
              eff_tol(tolerance, frac, si.delay)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

int itemset_support(const std::vector<ChainItem>& items,
                    const std::vector<sigkit::OutlierStream>& streams,
                    std::int32_t tolerance, double tolerance_frac) {
  if (items.empty()) return 0;
  int support = 0;
  for (const std::int32_t t : streams[items.front().signal])
    if (all_items_near(items, streams, t, tolerance, tolerance_frac))
      ++support;
  return support;
}

double itemset_significance(const std::vector<ChainItem>& items,
                            const std::vector<sigkit::OutlierStream>& streams,
                            std::int32_t tolerance, double tolerance_frac,
                            std::size_t total_samples) {
  const auto& first = streams[items.front().signal];
  if (first.empty()) return 0.0;
  std::vector<double> aligned, background;
  aligned.reserve(first.size());
  background.reserve(first.size());
  std::uint64_t seed = 0x6472697465ULL;
  for (const auto& it : items) seed = seed * 31 + it.signal * 7 + it.delay;
  util::Rng rng(seed);
  const std::int64_t n = total_samples > 0
                             ? static_cast<std::int64_t>(total_samples)
                             : static_cast<std::int64_t>(first.back()) + 1;
  for (const std::int32_t t : first) {
    aligned.push_back(
        all_items_near(items, streams, t, tolerance, tolerance_frac) ? 1.0
                                                                     : 0.0);
    const std::int32_t u =
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n)));
    background.push_back(
        all_items_near(items, streams, u, tolerance, tolerance_frac) ? 1.0
                                                                     : 0.0);
  }
  const auto mw = util::mann_whitney_u(aligned, background);
  return 1.0 - mw.p_greater;
}

std::vector<Chain> mine_gradual_itemsets(
    const std::vector<sigkit::OutlierStream>& streams,
    const std::vector<sigkit::PairCorrelation>& seeds, const GriteConfig& cfg,
    GriteStats* stats) {
  GriteStats local_stats;
  GriteStats& st = stats ? *stats : local_stats;
  st = {};
  st.seed_pairs = seeds.size();

  // Delay index of the seed pairs, used for the join consistency check.
  std::unordered_map<std::uint64_t, std::vector<std::int32_t>> pair_delays;
  for (const auto& s : seeds)
    pair_delays[(static_cast<std::uint64_t>(s.a) << 32) | s.b].push_back(
        s.delay);
  auto pair_consistent = [&](std::uint32_t a, std::uint32_t b,
                             std::int32_t want) {
    const auto it =
        pair_delays.find((static_cast<std::uint64_t>(a) << 32) | b);
    if (it == pair_delays.end()) return false;
    for (const std::int32_t d : it->second)
      if (grite_delay_consistent(d, want, cfg.tolerance, cfg.tolerance_frac))
        return true;
    return false;
  };

  // Level 1: the cross-correlation pairs, re-expressed as itemsets.
  std::vector<Chain> level;
  level.reserve(seeds.size());
  for (const auto& s : seeds) {
    Chain c;
    c.items = {{static_cast<std::uint32_t>(s.a), 0},
               {static_cast<std::uint32_t>(s.b), s.delay}};
    c.support = s.support;
    c.confidence = s.confidence;
    c.significance = s.significance;
    level.push_back(std::move(c));
  }

  std::vector<Chain> accepted = level;
  st.accepted_per_level_total += level.size();
  st.levels_built = 1;

  std::unordered_set<std::string> seen;
  for (const auto& c : level) seen.insert(itemset_key(c.items));

  for (int lvl = 2; lvl < cfg.max_level && !level.empty(); ++lvl) {
    // Group siblings by shared prefix.
    std::unordered_map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < level.size(); ++i)
      groups[prefix_key(level[i].items)].push_back(i);

    // Build candidate joins.
    std::vector<std::vector<ChainItem>> candidates;
    for (const auto& [key, members] : groups) {
      (void)key;
      for (std::size_t x = 0; x < members.size(); ++x) {
        for (std::size_t y = 0; y < members.size(); ++y) {
          if (x == y) continue;
          const auto& ix = level[members[x]].items;
          const auto& iy = level[members[y]].items;
          const ChainItem lx = ix.back();
          const ChainItem ly = iy.back();
          if (lx.signal == ly.signal) continue;
          if (ly.delay < lx.delay) continue;  // keep delay-ordered joins
          if (ly.delay == lx.delay && lx.signal > ly.signal) continue;
          // GRITE delay-consistency test: the pair (lx, ly) must itself be
          // correlated at the implied delay.
          if (!pair_consistent(lx.signal, ly.signal, ly.delay - lx.delay))
            continue;
          std::vector<ChainItem> joined = ix;
          joined.push_back(ly);
          if (!seen.insert(itemset_key(joined)).second) continue;
          candidates.push_back(std::move(joined));
          if (candidates.size() >= cfg.max_candidates_per_level) break;
        }
        if (candidates.size() >= cfg.max_candidates_per_level) break;
      }
      if (candidates.size() >= cfg.max_candidates_per_level) break;
    }
    if (candidates.empty()) break;
    st.candidates_evaluated += candidates.size();

    // Evaluate candidates (optionally in parallel).
    std::vector<Chain> next(candidates.size());
    std::vector<char> keep(candidates.size(), 0);
    auto evaluate = [&](std::size_t i) {
      const auto& items = candidates[i];
      const int support =
          itemset_support(items, streams, cfg.tolerance, cfg.tolerance_frac);
      if (support < cfg.min_support) return;
      const double conf =
          static_cast<double>(support) /
          static_cast<double>(streams[items.front().signal].size());
      if (conf < cfg.min_confidence) return;
      const double sig =
          itemset_significance(items, streams, cfg.tolerance,
                               cfg.tolerance_frac, cfg.total_samples);
      if (sig < cfg.min_significance) return;
      Chain c;
      c.items = items;
      c.support = support;
      c.confidence = conf;
      c.significance = sig;
      next[i] = std::move(c);
      keep[i] = 1;
    };
    if (cfg.threads > 1) {
      util::ThreadPool pool(cfg.threads);
      util::parallel_for(
          pool, 0, candidates.size(), [&](std::size_t i) { evaluate(i); },
          /*grain=*/8);
    } else {
      for (std::size_t i = 0; i < candidates.size(); ++i) evaluate(i);
    }

    level.clear();
    for (std::size_t i = 0; i < candidates.size(); ++i)
      if (keep[i]) level.push_back(std::move(next[i]));
    if (level.empty()) break;
    accepted.insert(accepted.end(), level.begin(), level.end());
    st.accepted_per_level_total += level.size();
    ++st.levels_built;
  }

  // Maximal-itemset filtering: the paper keeps "only the most frequent
  // subset", collapsing redundant sub-chains into their supersets so the
  // online correlation set stays small.
  if (cfg.subsume_support_ratio > 0.0) {
    std::vector<Chain> kept;
    kept.reserve(accepted.size());
    for (const auto& small : accepted) {
      bool drop = false;
      for (const auto& big : accepted) {
        if (&big == &small) continue;
        if (subsumes(big, small, cfg.tolerance, cfg.tolerance_frac) &&
            static_cast<double>(big.support) >=
                cfg.subsume_support_ratio *
                    static_cast<double>(small.support)) {
          drop = true;
          break;
        }
      }
      if (drop)
        ++st.subsumed_removed;
      else
        kept.push_back(small);
    }
    accepted = std::move(kept);
  }
  return accepted;
}

}  // namespace elsa::core
