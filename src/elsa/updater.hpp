// Adaptive correlation updating — the module the paper describes but could
// not evaluate ("the correlation updating modules were not tested, since
// the changes in such a short time are not relevant", §IV; "we plan to
// investigate the use of [parallel gradual itemset mining] on-line in
// order to adapt correlations to changes in the system", §III.C).
//
// The mechanism: periodically re-mine chains over a trailing window (the
// paper keeps the last two months of signals online), then MERGE the fresh
// chain set into the operating one instead of replacing it — correlations
// that temporarily produced no occurrences (their fault type was simply
// quiet this window) decay gracefully rather than vanishing, and chains
// from new system behaviour (software upgrades, §I) enter immediately.
#pragma once

#include <cstdint>
#include <vector>

#include "elsa/chain.hpp"
#include "elsa/pipeline.hpp"

namespace elsa::core {

struct UpdateConfig {
  /// Support multiplier applied to chains absent from the fresh window.
  double unseen_decay = 0.5;
  /// Chains whose decayed support falls below this are retired.
  double retire_support = 1.5;
  /// Delay slack when matching old and new chains, samples.
  std::int32_t tolerance = 3;
  double tolerance_frac = 0.08;
};

struct UpdateStats {
  std::size_t refreshed = 0;  ///< present in both sets (stats replaced)
  std::size_t added = 0;      ///< new-behaviour chains
  std::size_t decayed = 0;    ///< old chains kept at reduced support
  std::size_t retired = 0;    ///< old chains dropped
};

/// True when the two chains describe the same correlation: identical
/// signal sequences with per-item delays within tolerance.
bool same_chain(const Chain& a, const Chain& b, std::int32_t tolerance,
                double tolerance_frac = 0.0);

/// Merge a freshly mined chain set into the operating set.
std::vector<Chain> merge_chain_sets(const std::vector<Chain>& current,
                                    const std::vector<Chain>& fresh,
                                    const UpdateConfig& cfg = {},
                                    UpdateStats* stats = nullptr);

/// One full update round: retrain offline on [window_begin, window_end)
/// of the trace with the model's method, merge chains into `model`, and
/// refresh profiles/severities to the new window's values.
UpdateStats update_model(OfflineModel& model, const simlog::Trace& trace,
                         std::int64_t window_begin_ms,
                         std::int64_t window_end_ms,
                         const PipelineConfig& cfg,
                         const UpdateConfig& ucfg = {});

}  // namespace elsa::core
