// Prediction scoring (paper §VI): precision = fraction of predictions that
// turn out correct; recall = fraction of ground-truth failures predicted.
// A prediction is correct when (a) it names the failure's event type,
// (b) it was ISSUED before the failure happened — analysis latency counts
// against it (Fig 8), (c) the failure falls inside the predicted window,
// and (d) the predicted location covers an affected component.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "elsa/online.hpp"
#include "simlog/record.hpp"
#include "topology/topology.hpp"

namespace elsa::core {

struct EvalConfig {
  /// Base slack added to the predicted failure time.
  std::int64_t slack_ms = 120'000;
  /// Additional slack proportional to the chain's promised lead (long
  /// cascades jitter more).
  double slack_lead_factor = 1.0;
  /// A zero-lead chain detects its failure in the very bucket the failure
  /// lands in; the failure precedes the bucket-close trigger by up to one
  /// sample period. Such predictions name a real failure (they count for
  /// precision) but are issued too late to act on (they never count for
  /// recall).
  std::int64_t trigger_grace_ms = 15'000;
  bool require_location = true;
};

struct CategoryRecall {
  std::string category;
  std::size_t total = 0;
  std::size_t predicted = 0;
  double recall() const {
    return total ? static_cast<double>(predicted) / static_cast<double>(total)
                 : 0.0;
  }
};

struct EvalResult {
  std::size_t predictions = 0;
  std::size_t correct_predictions = 0;
  std::size_t faults = 0;
  std::size_t predicted_faults = 0;
  /// Faults whose only matching predictions were issued after the failure —
  /// lost to analysis latency (§VI.A discusses exactly this failure mode).
  std::size_t missed_late = 0;
  std::vector<CategoryRecall> per_category;
  /// Lead time (s) of the earliest correct prediction per predicted fault.
  std::vector<double> lead_times_s;
  /// Per-input-fault outcome, aligned with the `faults` argument: 1 when a
  /// correct prediction was issued in time (0 for missed and for faults
  /// outside the test range).
  std::vector<std::uint8_t> fault_predicted;
  /// Earliest in-time alarm per fault (ms), -1 when none.
  std::vector<std::int64_t> fault_alarm_time_ms;
  /// Per-input-prediction correctness, aligned with `predictions`.
  std::vector<std::uint8_t> prediction_correct;

  double precision() const {
    return predictions ? static_cast<double>(correct_predictions) /
                             static_cast<double>(predictions)
                       : 0.0;
  }
  double recall() const {
    return faults ? static_cast<double>(predicted_faults) /
                        static_cast<double>(faults)
                  : 0.0;
  }
  /// Fraction of predicted faults with lead time above `seconds`.
  double lead_fraction_above(double seconds) const;
};

/// Score predictions against ground truth. `fault_failure_tmpls[i]` holds
/// the analysis-side (HELO) event types of every FAILURE/FATAL record
/// faults[i] emitted — predicting any of a fault's failure events counts
/// (a CIODB crash is correctly predicted whether the alarm names the ciodb
/// or the mmcs abort). Only faults failing at/after `test_begin_ms` are
/// scored.
EvalResult evaluate_predictions(
    const std::vector<Prediction>& predictions,
    const std::vector<simlog::GroundTruthFault>& faults,
    const std::vector<std::vector<std::uint32_t>>& fault_failure_tmpls,
    const topo::Topology& topo, std::int64_t test_begin_ms,
    const EvalConfig& cfg = {});

}  // namespace elsa::core
