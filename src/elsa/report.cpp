#include "elsa/report.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace elsa::core {

SequenceSizeReport sequence_size_report(const std::vector<Chain>& chains) {
  SequenceSizeReport r;
  double total = 0.0;
  std::size_t above8 = 0;
  for (const auto& c : chains) {
    const std::size_t n = c.items.size();
    r.sizes.add(n >= 8 ? "8+" : std::to_string(n));
    total += static_cast<double>(n);
    if (n >= 8) ++above8;
  }
  if (!chains.empty()) {
    r.mean_size = total / static_cast<double>(chains.size());
    r.fraction_above_8 =
        static_cast<double>(above8) / static_cast<double>(chains.size());
  }
  return r;
}

DelayReport delay_report(const std::vector<Chain>& chains,
                         std::int64_t dt_ms) {
  DelayReport r;
  const double dt_s = static_cast<double>(dt_ms) / 1000.0;
  for (const auto& c : chains) {
    for (std::size_t j = 1; j < c.items.size(); ++j) {
      const double gap_s =
          static_cast<double>(c.items[j].delay - c.items[j - 1].delay) * dt_s;
      r.pair_delays.add(gap_s);
    }
    const double span_s = static_cast<double>(c.span()) * dt_s;
    r.span_delays.add(span_s);
    r.max_span_s = std::max(r.max_span_s, span_s);
  }
  return r;
}

PropagationReport propagation_report(const std::vector<Chain>& chains) {
  PropagationReport r;
  std::size_t beyond_midplane = 0;
  double initiator_sum = 0.0;
  for (const auto& c : chains) {
    if (c.location.occurrences == 0) continue;
    ++r.chains;
    r.scopes.add(topo::to_string(c.location.scope));
    const bool propagates = c.location.propagating_fraction > 0.5;
    if (propagates) {
      ++r.propagating;
      initiator_sum += c.location.initiator_included;
    }
    if (static_cast<int>(c.location.scope) >
        static_cast<int>(topo::Scope::Midplane))
      ++beyond_midplane;
  }
  if (r.chains > 0) {
    r.fraction_propagating =
        static_cast<double>(r.propagating) / static_cast<double>(r.chains);
    r.fraction_beyond_midplane =
        static_cast<double>(beyond_midplane) /
        static_cast<double>(r.chains);
  }
  if (r.propagating > 0)
    r.initiator_included = initiator_sum / static_cast<double>(r.propagating);
  return r;
}

std::vector<CategoryBar> recall_breakdown(const EvalResult& eval) {
  std::vector<CategoryBar> bars;
  for (const auto& cat : eval.per_category) {
    CategoryBar b;
    b.category = cat.category;
    b.total = cat.total;
    b.predicted = cat.predicted;
    if (eval.faults > 0) {
      b.occurrence_fraction = static_cast<double>(cat.total) /
                              static_cast<double>(eval.faults);
      b.predicted_fraction = static_cast<double>(cat.predicted) /
                             static_cast<double>(eval.faults);
    }
    bars.push_back(std::move(b));
  }
  std::sort(bars.begin(), bars.end(),
            [](const CategoryBar& a, const CategoryBar& b) {
              return a.occurrence_fraction > b.occurrence_fraction;
            });
  return bars;
}

AnalysisTimeReport analysis_time_report(const EngineStats& stats) {
  AnalysisTimeReport r;
  r.windows = stats.analysis_window_ms.size();
  if (r.windows == 0) return r;
  std::vector<double> w(stats.analysis_window_ms.begin(),
                        stats.analysis_window_ms.end());
  r.mean_ms = util::mean(w);
  r.p95_ms = util::percentile(w, 95.0);
  r.max_ms = *std::max_element(w.begin(), w.end());
  return r;
}

}  // namespace elsa::core
