// Pure data-mining baseline (paper Table III "Data mining"): fixed-window
// association-rule extraction over raw event occurrences, in the style of
// Zheng et al. [29] and the other window-based predictors the paper reviews
// (§II). Deliberately shares none of the signal machinery:
//   * it sees raw template occurrences, never outliers — so a burst of a
//     noisy background type is indistinguishable from its base traffic,
//     and silence (dropouts) is invisible;
//   * all antecedent→failure co-occurrence must fall inside ONE fixed time
//     window, so hour-scale cascades (node cards) are out of reach;
//   * every event type is treated identically (the paper's core criticism).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "elsa/chain.hpp"

namespace elsa::core {

struct DmConfig {
  std::int64_t window_ms = 240'000;  ///< fixed correlation window (4 min)
  int min_support = 4;
  double min_confidence = 0.75;
  /// Antecedents occurring more often than this per day are considered
  /// uninformative background chatter and skipped (standard frequent-item
  /// pruning; also keeps rule application tractable online).
  double max_antecedent_per_day = 2000.0;
};

struct DmStats {
  std::size_t pairs_scanned = 0;
  std::size_t rules = 0;
};

/// Incremental association-rule state: feed (template, time) events in
/// non-decreasing time order and extract rules at any point. This is the
/// streaming entry point the offline mine_assoc_rules() is implemented on
/// top of — by construction, feeding a time-sorted event stream yields
/// rules identical (bit-for-bit, including the floating-point delay sums)
/// to batch-mining the same occurrence lists.
///
/// Memory is bounded by the correlation window: per-template occurrence
/// buffers are pruned below `now - window_ms` (an occurrence older than the
/// window can never match a future failure), so steady-state footprint is
/// O(events-per-window + live pairs), not O(stream).
class DmAccumulator {
 public:
  DmAccumulator(std::size_t num_templates, std::vector<bool> is_failure,
                DmConfig cfg);

  /// Ingest one event. Times must be non-decreasing; all events sharing a
  /// timestamp are treated as simultaneous (matching is order-independent
  /// within a timestamp), mirroring the batch miner's list semantics.
  void add(std::uint32_t tmpl, std::int64_t time_ms);

  /// Extract the current rule set (flushes the open timestamp first).
  /// Identical emission order and arithmetic to mine_assoc_rules().
  std::vector<Chain> rules(std::int64_t dt_ms, double train_days,
                           DmStats* stats = nullptr);

 private:
  struct PairStat {
    int support = 0;
    double delay_sum_ms = 0.0;
  };

  void flush();
  void match_failure(std::uint32_t f, std::int64_t tf);

  DmConfig cfg_;
  std::vector<bool> is_failure_;
  /// Occurrences still inside the correlation window, per template.
  std::vector<std::deque<std::int64_t>> recent_;
  /// Total occurrence count per template (for confidence / per-day prune).
  std::vector<std::size_t> total_;
  /// Previous occurrence time per failure template (an antecedent at or
  /// before it already matched that earlier failure via lower_bound).
  std::vector<std::int64_t> prev_fail_;
  std::vector<char> has_prev_fail_;
  std::unordered_map<std::uint64_t, PairStat> pairs_;

  std::int64_t open_time_ = 0;
  bool open_ = false;
  std::vector<std::uint32_t> open_batch_;
};

/// Mine antecedent -> failure-template rules. `occurrences[t]` are sorted
/// occurrence times (ms) of template t during training;
/// `is_failure_template[t]` marks consequent candidates. Delays are stored
/// in samples of `dt_ms` so the resulting chains plug into the same online
/// predictor as the hybrid chains. Implemented as a feed of the merged
/// time-sorted stream through DmAccumulator.
std::vector<Chain> mine_assoc_rules(
    const std::vector<std::vector<std::int64_t>>& occurrences,
    const std::vector<bool>& is_failure_template, std::int64_t dt_ms,
    double train_days, const DmConfig& cfg, DmStats* stats = nullptr);

}  // namespace elsa::core
