// Pure data-mining baseline (paper Table III "Data mining"): fixed-window
// association-rule extraction over raw event occurrences, in the style of
// Zheng et al. [29] and the other window-based predictors the paper reviews
// (§II). Deliberately shares none of the signal machinery:
//   * it sees raw template occurrences, never outliers — so a burst of a
//     noisy background type is indistinguishable from its base traffic,
//     and silence (dropouts) is invisible;
//   * all antecedent→failure co-occurrence must fall inside ONE fixed time
//     window, so hour-scale cascades (node cards) are out of reach;
//   * every event type is treated identically (the paper's core criticism).
#pragma once

#include <cstdint>
#include <vector>

#include "elsa/chain.hpp"

namespace elsa::core {

struct DmConfig {
  std::int64_t window_ms = 240'000;  ///< fixed correlation window (4 min)
  int min_support = 4;
  double min_confidence = 0.75;
  /// Antecedents occurring more often than this per day are considered
  /// uninformative background chatter and skipped (standard frequent-item
  /// pruning; also keeps rule application tractable online).
  double max_antecedent_per_day = 2000.0;
};

struct DmStats {
  std::size_t pairs_scanned = 0;
  std::size_t rules = 0;
};

/// Mine antecedent -> failure-template rules. `occurrences[t]` are sorted
/// occurrence times (ms) of template t during training;
/// `is_failure_template[t]` marks consequent candidates. Delays are stored
/// in samples of `dt_ms` so the resulting chains plug into the same online
/// predictor as the hybrid chains.
std::vector<Chain> mine_assoc_rules(
    const std::vector<std::vector<std::int64_t>>& occurrences,
    const std::vector<bool>& is_failure_template, std::int64_t dt_ms,
    double train_days, const DmConfig& cfg, DmStats* stats = nullptr);

}  // namespace elsa::core
