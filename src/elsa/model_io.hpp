// Offline-model serialisation: persist what the offline phase learned —
// HELO templates, per-signal profiles, severities, and correlation chains
// with their location profiles — as a versioned text format, and load it
// back. This separates the two halves of the paper's deployment: the
// expensive offline phase runs where the historical logs live; the online
// monitor loads the model file and follows the live stream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "elsa/pipeline.hpp"

namespace elsa::core {

/// Current format version; bumped on any incompatible change.
inline constexpr int kModelFormatVersion = 1;

/// Serialise a trained model. Training artefacts that exist only for
/// diagnostics (outlier streams, seeds, miner stats) are not persisted.
void save_model(std::ostream& os, const OfflineModel& model);
void save_model_file(const std::string& path, const OfflineModel& model);

/// Load a model saved by save_model. Throws std::runtime_error on any
/// malformed or version-mismatched input.
OfflineModel load_model(std::istream& is);
OfflineModel load_model_file(const std::string& path);

/// FNV-1a 64-bit over a byte string: the project's digest primitive (same
/// constants as the advisor's schedule digest). `seed` chains digests:
/// fnv1a_digest(b, fnv1a_digest(a)) hashes the concatenation a||b.
std::uint64_t fnv1a_digest(std::string_view bytes,
                           std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Serialise `model` and return the text (exactly what save_model writes).
std::string model_to_string(const OfflineModel& model);

/// FNV-1a digest of the serialised model text. THE model identity the
/// online≡batch CI gate compares: byte-identical serialisation (including
/// every floating-point digit) <=> equal digest.
std::uint64_t model_digest(const OfflineModel& model);

}  // namespace elsa::core
