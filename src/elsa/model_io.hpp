// Offline-model serialisation: persist what the offline phase learned —
// HELO templates, per-signal profiles, severities, and correlation chains
// with their location profiles — as a versioned text format, and load it
// back. This separates the two halves of the paper's deployment: the
// expensive offline phase runs where the historical logs live; the online
// monitor loads the model file and follows the live stream.
#pragma once

#include <iosfwd>
#include <string>

#include "elsa/pipeline.hpp"

namespace elsa::core {

/// Current format version; bumped on any incompatible change.
inline constexpr int kModelFormatVersion = 1;

/// Serialise a trained model. Training artefacts that exist only for
/// diagnostics (outlier streams, seeds, miner stats) are not persisted.
void save_model(std::ostream& os, const OfflineModel& model);
void save_model_file(const std::string& path, const OfflineModel& model);

/// Load a model saved by save_model. Throws std::runtime_error on any
/// malformed or version-mismatched input.
OfflineModel load_model(std::istream& is);
OfflineModel load_model_file(const std::string& path);

}  // namespace elsa::core
