#include "elsa/chain.hpp"

#include <cstdio>

namespace elsa::core {

std::string to_string(const Chain& chain) {
  std::string out;
  char buf[48];
  for (std::size_t i = 0; i < chain.items.size(); ++i) {
    if (i == 0) {
      std::snprintf(buf, sizeof buf, "%u", chain.items[i].signal);
    } else {
      std::snprintf(buf, sizeof buf, " ->(%d) %u",
                    chain.items[i].delay - chain.items[i - 1].delay,
                    chain.items[i].signal);
    }
    out += buf;
  }
  return out;
}

}  // namespace elsa::core
