// End-to-end pipeline (paper Fig 2): trace -> HELO preprocessing -> signal
// extraction -> per-signal characterisation -> outlier streams ->
// correlation mining (per method) -> location annotation -> online
// prediction -> evaluation. This is the public entry point the examples and
// benchmarks drive; each stage is also usable on its own.
#pragma once

#include <cstdint>
#include <vector>

#include "elsa/chain.hpp"
#include "elsa/dm_miner.hpp"
#include "elsa/evaluate.hpp"
#include "elsa/grite.hpp"
#include "elsa/location.hpp"
#include "elsa/online.hpp"
#include "elsa/outlier.hpp"
#include "elsa/profile.hpp"
#include "helo/helo.hpp"
#include "signalkit/signal.hpp"
#include "signalkit/xcorr.hpp"
#include "simlog/record.hpp"

namespace elsa::core {

/// The three prediction approaches compared in Table III.
enum class Method : std::uint8_t { Hybrid, SignalOnly, DataMining };

const char* to_string(Method m);

struct PipelineConfig {
  std::int64_t dt_ms = 10'000;  ///< 10 s sampling, per paper §III.A
  ProfileConfig profile;
  /// Cross-correlation gates for the hybrid seeds.
  sigkit::XcorrConfig xcorr;
  /// Looser gates for the pure-signal baseline (it has no multi-event
  /// evidence to filter with, so it keeps weaker pairs — the paper reports
  /// 117 mostly short sequences for it vs 62 for the hybrid).
  sigkit::XcorrConfig xcorr_signal_only;
  GriteConfig grite;
  DmConfig dm;
  EngineConfig engine;
  /// The pure-signal baseline replays the paper's earlier toolchain [4]:
  /// no replacement filter (the §III.B.1 novelty) and a far heavier
  /// per-outlier analysis cost (its wavelet re-characterisation made the
  /// analysis window exceed 30 s under bursts, §VI.A).
  AnalysisCostModel signal_only_cost{5.0, 9000.0, 60.0};
  DetectorOptions signal_only_detector{false, true};
  EvalConfig eval;
  std::size_t threads = 2;

  PipelineConfig();
};

/// Everything the offline phase learns.
struct OfflineModel {
  Method method = Method::Hybrid;
  helo::TemplateMiner helo;
  std::vector<SignalProfile> profiles;
  std::vector<simlog::Severity> tmpl_severity;
  std::vector<Chain> chains;  ///< annotated (failure_item, location)
  std::int64_t train_begin_ms = 0;
  std::int64_t train_end_ms = 0;

  // Training-phase artefacts kept for analysis/diagnostics.
  std::vector<sigkit::OutlierStream> train_outliers;
  EventsBySignal train_events;
  std::vector<sigkit::PairCorrelation> seeds;
  GriteStats grite_stats;
  DmStats dm_stats;
  /// Chains containing no failure-severity event — the paper's non-error
  /// sequences (§IV.A, ~23 %), excluded from prediction.
  std::size_t non_error_chains = 0;
};

struct ExperimentResult {
  OfflineModel model;
  std::vector<Prediction> predictions;
  EngineStats engine_stats;
  EvalResult eval;
  /// Analysis-side (HELO) templates of each fault's FAILURE/FATAL records.
  std::vector<std::vector<std::uint32_t>> fault_failure_tmpls;
};

/// Majority severity per HELO template over classified training records.
std::vector<simlog::Severity> majority_severity(
    std::size_t num_templates, const std::vector<std::uint32_t>& tids,
    const std::vector<simlog::LogRecord>& records, std::size_t count);

/// Mark each chain's failure item from template severities; returns the
/// number of non-error chains.
std::size_t annotate_failure_items(
    std::vector<Chain>& chains,
    const std::vector<simlog::Severity>& severity);

/// Offline phase on records before `train_end_ms`.
OfflineModel train_offline(const simlog::Trace& trace,
                           std::int64_t train_end_ms, Method method,
                           const PipelineConfig& cfg);

/// Full experiment: offline on the first `train_days`, online on the rest,
/// scored against ground truth.
ExperimentResult run_experiment(const simlog::Trace& trace, double train_days,
                                Method method, const PipelineConfig& cfg);

}  // namespace elsa::core
