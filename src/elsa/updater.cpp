#include "elsa/updater.hpp"

#include <algorithm>
#include <cmath>

namespace elsa::core {

bool same_chain(const Chain& a, const Chain& b, std::int32_t tolerance,
                double tolerance_frac) {
  if (a.items.size() != b.items.size()) return false;
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    if (a.items[i].signal != b.items[i].signal) return false;
    const std::int32_t tol =
        tolerance + static_cast<std::int32_t>(
                        tolerance_frac *
                        static_cast<double>(std::max(a.items[i].delay,
                                                     b.items[i].delay)));
    if (std::abs(a.items[i].delay - b.items[i].delay) > tol) return false;
  }
  return true;
}

std::vector<Chain> merge_chain_sets(const std::vector<Chain>& current,
                                    const std::vector<Chain>& fresh,
                                    const UpdateConfig& cfg,
                                    UpdateStats* stats) {
  UpdateStats local;
  UpdateStats& st = stats ? *stats : local;
  st = {};

  std::vector<Chain> merged;
  merged.reserve(current.size() + fresh.size());
  std::vector<bool> fresh_used(fresh.size(), false);

  for (const Chain& old : current) {
    std::size_t match = fresh.size();
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      if (fresh_used[i]) continue;
      if (same_chain(old, fresh[i], cfg.tolerance, cfg.tolerance_frac)) {
        match = i;
        break;
      }
    }
    if (match < fresh.size()) {
      // Refresh: the new window's statistics win; keep the richer location
      // profile (more observed occurrences).
      Chain c = fresh[match];
      if (old.location.occurrences > c.location.occurrences)
        c.location = old.location;
      fresh_used[match] = true;
      merged.push_back(std::move(c));
      ++st.refreshed;
    } else {
      Chain c = old;
      c.support = static_cast<int>(
          std::floor(static_cast<double>(c.support) * cfg.unseen_decay));
      if (static_cast<double>(c.support) < cfg.retire_support) {
        ++st.retired;
        continue;
      }
      merged.push_back(std::move(c));
      ++st.decayed;
    }
  }
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    if (fresh_used[i]) continue;
    merged.push_back(fresh[i]);
    ++st.added;
  }
  return merged;
}

UpdateStats update_model(OfflineModel& model, const simlog::Trace& trace,
                         std::int64_t window_begin_ms,
                         std::int64_t window_end_ms,
                         const PipelineConfig& cfg,
                         const UpdateConfig& ucfg) {
  // Retrain on the trailing window. train_offline reads from the trace
  // start; emulate the window by training to window_end — records before
  // window_begin still contribute signal history (harmless: median-based
  // characterisation is dominated by the bulk), while mining support comes
  // from the whole span. A stricter windowed variant would slice the trace.
  simlog::Trace window;
  window.topology = trace.topology;
  window.t_begin_ms = window_begin_ms;
  window.t_end_ms = window_end_ms;
  for (const auto& rec : trace.records) {
    if (rec.time_ms < window_begin_ms) continue;
    if (rec.time_ms >= window_end_ms) break;
    auto r = rec;
    r.time_ms -= window_begin_ms;
    window.records.push_back(std::move(r));
  }
  window.t_end_ms -= window_begin_ms;
  window.t_begin_ms = 0;

  OfflineModel fresh =
      train_offline(window, window.t_end_ms, model.method, cfg);

  // The fresh model's template ids come from its own HELO pass; reconcile
  // by classifying each fresh template's text in the operating miner so
  // chain signal ids line up.
  std::vector<std::uint32_t> idmap(fresh.helo.size());
  for (std::uint32_t t = 0; t < fresh.helo.size(); ++t)
    idmap[t] = model.helo.classify(fresh.helo.at(t).text());
  auto remap = [&](std::vector<Chain>& chains) {
    for (auto& c : chains)
      for (auto& item : c.items)
        if (item.signal < idmap.size()) item.signal = idmap[item.signal];
  };
  remap(fresh.chains);

  UpdateStats stats;
  model.chains = merge_chain_sets(model.chains, fresh.chains, ucfg, &stats);

  // Refresh per-signal profiles and severities for templates the fresh
  // window observed; keep the old characterisation for quiet ones.
  if (model.profiles.size() < model.helo.size())
    model.profiles.resize(model.helo.size());
  if (model.tmpl_severity.size() < model.helo.size())
    model.tmpl_severity.resize(model.helo.size(), simlog::Severity::Info);
  for (std::uint32_t t = 0; t < fresh.helo.size(); ++t) {
    const std::uint32_t target = idmap[t];
    if (target >= model.profiles.size()) continue;
    model.profiles[target] = fresh.profiles[t];
    model.tmpl_severity[target] = fresh.tmpl_severity[t];
  }
  annotate_failure_items(model.chains, model.tmpl_severity);
  return stats;
}

}  // namespace elsa::core
