// Correlation chains: the common currency of the three mining approaches.
// A chain is an ordered set of (signal, delay) items — the paper's gradual
// itemset G = {(S1, th1), ..., (Sk, thk)} (§III.C) — plus the statistics and
// location profile attached during the offline phase. The online predictor
// consumes chains regardless of which miner produced them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace elsa::core {

struct ChainItem {
  std::uint32_t signal = 0;  ///< event-type (HELO template) id
  std::int32_t delay = 0;    ///< samples after the chain's first item
};

/// Propagation behaviour learned for a chain (paper §III.D / §V).
struct LocationProfile {
  topo::Scope scope = topo::Scope::None;  ///< typical spread of occurrences
  double propagating_fraction = 0.0;      ///< occurrences touching >1 node
  double initiator_included = 1.0;  ///< fraction where the first-symptom node
                                    ///< is in the final affected set
  double mean_nodes = 1.0;          ///< mean distinct nodes per occurrence
  int occurrences = 0;
};

struct Chain {
  std::vector<ChainItem> items;  ///< sorted by delay; items[0].delay == 0
  int support = 0;
  double confidence = 0.0;
  double significance = 0.0;
  /// Index into `items` of the event being predicted: the latest item whose
  /// template carries failure severity; -1 when the chain contains none
  /// (a non-error sequence, excluded from prediction per §IV.A).
  std::int32_t failure_item = -1;
  LocationProfile location;

  std::int32_t span() const {
    return items.empty() ? 0 : items.back().delay;
  }
  bool predictive() const { return failure_item > 0; }
  /// Lead time, in samples, from first symptom to predicted failure.
  std::int32_t lead() const {
    return failure_item > 0 ? items[static_cast<std::size_t>(failure_item)].delay
                            : 0;
  }
};

/// Human-readable one-line rendering, e.g. "12 ->(6) 47 ->(1) 13".
std::string to_string(const Chain& chain);

}  // namespace elsa::core
