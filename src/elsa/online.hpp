// Online prediction engine (paper §VI, Fig 8): consumes the live record
// stream, maintains the per-signal online outlier detectors, matches chain
// prefixes, and emits located, time-bounded failure predictions.
//
// The engine also carries an analysis-time model. The paper's measurements
// (observation window -> analysis time -> visible prediction window) are
// central to its evaluation: predictions that complete after the failure
// are worthless. Modern hardware runs this C++ implementation orders of
// magnitude faster than the 2012 toolchain the paper measured, so the
// engine simulates a single-server work queue with calibrated per-event /
// per-outlier service costs (constants documented in DESIGN.md); every
// prediction's issue time includes the queueing delay. Real wall-clock
// execution time is measured separately by the benchmarks.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "elsa/chain.hpp"
#include "elsa/outlier.hpp"
#include "simlog/record.hpp"
#include "topology/topology.hpp"

namespace elsa::core {

/// Calibrated service costs for the analysis-queue simulation.
struct AnalysisCostModel {
  double per_event_ms = 3.0;           ///< every incoming record
  double per_outlier_ms = 120.0;       ///< each outlier onset's bookkeeping
  double per_chain_trigger_ms = 40.0;  ///< each candidate chain inspected
};

struct EngineConfig {
  std::int64_t dt_ms = 10'000;
  std::size_t median_window = 8640;  ///< 1 day at 10 s sampling
  std::int32_t tolerance = 3;
  /// Attach learned location scopes to predictions. Off for the DM
  /// baseline, whose method class provides no location information —
  /// its predictions are system-wide.
  bool use_location = true;
  /// Match chains against raw template occurrences instead of outliers
  /// (the DM baseline's online behaviour).
  bool raw_event_matching = false;
  /// Suppress a prediction duplicating (template, overlapping window,
  /// overlapping location) within this many samples.
  std::int64_t dedupe_window_samples = 30;
  /// Sequence confirmation: a chain whose prefix (items before the failure
  /// item) holds at least this many items emits a prediction only after
  /// that many prefix items are observed at consistent delays. Chains with
  /// shorter prefixes emit on their first item. This is the structural
  /// precision advantage of multi-event chains over bare pairs: one stray
  /// precursor cannot raise an alarm when the learned sequence expects
  /// corroboration. 1 = emit on any prefix item (the ablation baseline).
  int min_prefix_matches = 2;
  AnalysisCostModel cost;
  DetectorOptions detector;
};

struct Prediction {
  std::int64_t trigger_time_ms = 0;    ///< when the symptom was observable
  std::int64_t issue_time_ms = 0;      ///< trigger + analysis-queue delay
  std::int64_t predicted_time_ms = 0;  ///< expected failure time
  std::uint32_t tmpl = 0;              ///< predicted failure event type
  std::vector<std::int32_t> nodes;     ///< base locations (empty = system)
  topo::Scope scope = topo::Scope::Node;  ///< expansion around `nodes`
  std::size_t chain_id = 0;
  double confidence = 0.0;
  /// Lead margin the chain promises, ms (failure delay minus trigger item
  /// delay); the evaluation slack scales with it.
  std::int64_t lead_ms = 0;
};

/// One (chain, prefix item) pair a signal can trigger.
struct ChainTrigger {
  std::size_t chain_id;
  std::size_t item_index;
};

/// The immutable rule model an OnlineEngine predicts from: chains,
/// per-signal profiles, and the derived trigger/prefix indexes. Built once
/// (offline, or by the incremental miner in src/mining) and never mutated
/// afterwards — engines only ever read it, which is what makes the RCU-style
/// hot swap in serve/model_handle.hpp sound: a published ModelState is
/// frozen, readers share it without synchronisation.
struct ModelState {
  std::vector<Chain> chains;
  std::vector<SignalProfile> profiles;

  /// Chain triggers indexed by signal id (derived from `chains`).
  std::unordered_map<std::uint32_t, std::vector<ChainTrigger>> triggers;
  /// Per chain: number of prefix items that precede the failure item by a
  /// useful margin (>= 2 samples). Confirmation is only demanded when at
  /// least EngineConfig::min_prefix_matches such items exist — waiting for
  /// a corroborating item that arrives together with the failure would
  /// forfeit the lead.
  std::vector<int> early_prefix_counts;

  /// Build the derived indexes from a chain/profile set.
  static ModelState build(std::vector<Chain> chains,
                          std::vector<SignalProfile> profiles);
};

struct EngineStats {
  std::size_t records = 0;
  std::size_t buckets = 0;
  /// Records that arrived after their bucket had already closed (or, in raw
  /// matching mode, behind the latest record seen). They are clamped to the
  /// open bucket / latest time instead of being dropped: out-of-order
  /// arrival is the norm for a concurrent ingest path, and a slightly
  /// mis-bucketed count is far better than a hole in the signal.
  std::size_t out_of_order = 0;
  std::size_t outlier_onsets = 0;
  std::size_t raw_triggers = 0;
  std::size_t predictions_emitted = 0;
  std::size_t duplicates_suppressed = 0;
  /// Analysis window (ms) per outlier-bearing bucket: the §VI.A metric.
  std::vector<float> analysis_window_ms;
  double mean_analysis_ms() const;
  double max_analysis_ms() const;
  /// Distinct chains that fired at least once ("Seq Used" in Table III).
  std::size_t chains_used = 0;
};

class OnlineEngine {
 public:
  OnlineEngine(const topo::Topology& topo, std::vector<Chain> chains,
               std::vector<SignalProfile> profiles, EngineConfig cfg);

  /// Feed one record. `tmpl` is the event type id assigned by the online
  /// HELO classifier. Records should be roughly time-ordered; a record
  /// arriving behind the open bucket (normal for a concurrent ingest path)
  /// is clamped onto the open bucket and counted in
  /// `EngineStats::out_of_order` rather than corrupting closed history.
  void feed(const simlog::LogRecord& rec, std::uint32_t tmpl);

  /// Flush trailing buckets up to the end of the observation period.
  void finish(std::int64_t t_end_ms);

  /// Replace the rule model the engine predicts from. `m` must stay alive
  /// (and unmutated) until the next swap_model() call returns — exactly the
  /// grace-period contract serve::RcuHub enforces. Detector histories are
  /// kept for templates both models know (the observed signal is signal
  /// regardless of which rules consume it) and extended for templates only
  /// the new model names; partially-matched chain prefixes and per-chain
  /// fire counts are reset — chain ids are meaningless across models.
  void swap_model(const ModelState* m);

  const std::vector<Prediction>& predictions() const { return predictions_; }
  const EngineStats& stats() const { return stats_; }
  const std::vector<Chain>& chains() const { return model_->chains; }
  /// Per-chain fire counts (for the Table III "Seq Used" column).
  const std::vector<std::size_t>& chain_fires() const { return chain_fires_; }

 private:
  using Trigger = ChainTrigger;

  /// A partially observed chain occurrence awaiting confirmation.
  struct Pending {
    std::int32_t sample = 0;       ///< sample of the matched item
    std::size_t item_index = 0;
    std::vector<std::int32_t> nodes;
  };

  /// One outlier onset collected while closing a bucket.
  struct Onset {
    std::uint32_t tmpl = 0;
    std::vector<std::int32_t> nodes;
  };

  void ensure_detector(std::uint32_t tmpl);
  void close_buckets_through(std::int64_t t_ms);
  void close_one_bucket();
  /// Handle one observed (chain, item) trigger: emit immediately for
  /// single-prefix chains, otherwise match against / extend the pending
  /// occurrences. `sample` is the bucket index of the observation.
  void trigger_chain(const Trigger& tr, std::int32_t sample,
                     std::int64_t trigger_ms, std::int64_t issue_ms,
                     const std::vector<std::int32_t>& nodes);
  void emit(std::size_t chain_id, std::size_t item_index,
            std::int64_t trigger_ms, std::int64_t issue_ms,
            const std::vector<std::int32_t>& nodes);

  topo::Topology topo_;
  /// Model built by the legacy (chains, profiles) constructor. Engines fed
  /// through swap_model() never touch it after the first swap.
  std::unique_ptr<const ModelState> owned_;
  /// The model currently predicted from — `owned_.get()` until swap_model()
  /// repoints it. Never null.
  const ModelState* model_;
  EngineConfig cfg_;

  std::vector<OnlineDetector> detectors_;
  std::int64_t bucket_start_ms_ = 0;
  bool started_ = false;
  /// Latest record time seen (raw matching mode's ordering reference).
  std::int64_t last_time_ms_ = 0;
  /// Per-template activity in the open bucket.
  std::unordered_map<std::uint32_t, std::pair<std::uint32_t,
                                              std::vector<std::int32_t>>>
      bucket_activity_;

  /// Pending partial matches per chain id.
  std::unordered_map<std::size_t, std::vector<Pending>> pending_;

  // Analysis-queue state.
  double server_free_ms_ = 0.0;

  // Reused scratch buffers: feed() runs per record and close_one_bucket()
  // per bucket; after warm-up neither allocates. Slots in scratch_onsets_
  // beyond scratch_onset_count_ are dead but keep their nodes capacity.
  std::vector<std::int32_t> scratch_nodes_;
  std::vector<Onset> scratch_onsets_;
  std::size_t scratch_onset_count_ = 0;

  std::vector<Prediction> predictions_;
  std::vector<std::size_t> chain_fires_;
  EngineStats stats_;
};

}  // namespace elsa::core
