#include "elsa/profile.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace elsa::core {

SignalProfile build_profile(const std::vector<double>& train,
                            const ProfileConfig& cfg) {
  SignalProfile p;
  if (train.empty()) return p;

  const auto cls = sigkit::classify_signal(train, cfg.classifier);
  p.cls = cls.cls;
  p.period = cls.period;
  p.median = util::median(train);
  p.mad = util::mad(train);
  double sum = 0.0;
  for (double v : train) sum += v;
  p.mean = sum / static_cast<double>(train.size());

  switch (p.cls) {
    case sigkit::SignalClass::Silent:
      // Any occurrence is an anomaly.
      p.spike_delta = 0.5;
      break;
    case sigkit::SignalClass::Noise:
    case sigkit::SignalClass::Periodic:
      p.spike_delta = std::max(cfg.spike_sigmas * 1.4826 * p.mad,
                               cfg.spike_min_delta);
      break;
  }

  if (p.cls == sigkit::SignalClass::Periodic && p.period > 0) {
    const std::size_t window = static_cast<std::size_t>(
        cfg.dropout_periods * static_cast<double>(p.period));
    const double expected = p.mean * static_cast<double>(window);
    if (expected >= cfg.dropout_min_expected) {
      p.dropout_window = window;
      p.dropout_min_count = cfg.dropout_fraction * expected;
    }
  }
  return p;
}

}  // namespace elsa::core
