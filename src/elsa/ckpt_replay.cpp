#include "elsa/ckpt_replay.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace elsa::core {

namespace {

struct Event {
  double t_s;
  enum class Kind : std::uint8_t { Failure, ProtectedFailure, FalseAlarm } kind;
};

}  // namespace

ReplayResult replay_checkpointing(
    const std::vector<simlog::GroundTruthFault>& faults,
    const std::vector<Prediction>& predictions, const EvalResult& eval,
    const ReplayConfig& cfg) {
  if (cfg.t_end_ms <= cfg.t_begin_ms)
    throw std::invalid_argument("replay_checkpointing: empty window");
  if (eval.fault_predicted.size() != faults.size() ||
      eval.prediction_correct.size() != predictions.size())
    throw std::invalid_argument(
        "replay_checkpointing: eval does not match faults/predictions");

  ReplayResult r;
  const double t0 = static_cast<double>(cfg.t_begin_ms) / 1000.0;
  const double t1 = static_cast<double>(cfg.t_end_ms) / 1000.0;
  r.wall_s = t1 - t0;

  // Collect the event timeline.
  std::vector<Event> events;
  std::size_t unpredicted = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const double tf = static_cast<double>(faults[i].fail_time_ms) / 1000.0;
    if (tf < t0 || tf >= t1) continue;
    ++r.failures;
    if (eval.fault_predicted[i]) {
      ++r.predicted_in_time;
      events.push_back({tf, Event::Kind::ProtectedFailure});
    } else {
      ++unpredicted;
      events.push_back({tf, Event::Kind::Failure});
    }
  }
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (eval.prediction_correct[i]) continue;
    const double tp =
        static_cast<double>(predictions[i].issue_time_ms) / 1000.0;
    if (tp < t0 || tp >= t1) continue;
    ++r.false_alarms;
    events.push_back({tp, Event::Kind::FalseAlarm});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.t_s < b.t_s; });

  // Checkpoint interval against the surviving failure rate (eq. 4).
  const ckpt::CkptParams& p = cfg.params;
  double interval = cfg.interval_s;
  if (interval <= 0.0) {
    const double mttf_eff =
        unpredicted > 0 ? r.wall_s / static_cast<double>(unpredicted) : 1e12;
    interval = std::sqrt(2.0 * p.C * mttf_eff);
  }
  r.interval_s = interval;

  // Walk the timeline. `overhead` accumulates non-work time; lost work is
  // tracked separately. Work-in-progress since the last checkpoint is what
  // a failure destroys.
  double cursor = t0;
  double since_ckpt = 0.0;  // work at risk
  auto advance_to = [&](double t) {
    // Periodic checkpoints between cursor and t.
    double span = t - cursor;
    while (since_ckpt + span >= interval) {
      const double run = interval - since_ckpt;
      span -= run;
      since_ckpt = 0.0;
      ++r.checkpoints;
      r.checkpoint_cost_s += p.C;
    }
    since_ckpt += span;
    cursor = t;
  };

  for (const Event& e : events) {
    advance_to(e.t_s);
    switch (e.kind) {
      case Event::Kind::ProtectedFailure:
        // Proactive checkpoint just before the hit, then restart.
        ++r.checkpoints;
        r.checkpoint_cost_s += p.C;
        r.restart_cost_s += p.R + p.D;
        since_ckpt = 0.0;
        break;
      case Event::Kind::Failure:
        r.lost_work_s += since_ckpt;
        r.restart_cost_s += p.R + p.D;
        since_ckpt = 0.0;
        break;
      case Event::Kind::FalseAlarm:
        ++r.checkpoints;
        r.checkpoint_cost_s += p.C;
        since_ckpt = 0.0;
        break;
    }
  }
  advance_to(t1);

  const double overhead =
      r.checkpoint_cost_s + r.restart_cost_s + r.lost_work_s;
  r.useful_s = std::max(0.0, r.wall_s - overhead);
  return r;
}

}  // namespace elsa::core
