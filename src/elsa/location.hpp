// Location correlation (paper §III.D, §V): for every mined chain, replay
// its occurrences over the training outliers, collect the node sets the
// chain touched, and summarise the propagation behaviour — does this
// syndrome stay on one node, spread within a node card / midplane / rack,
// or go global (NFS storms)? The online predictor uses the learned scope to
// expand a trigger's location into the set of components to protect.
#pragma once

#include <vector>

#include "elsa/chain.hpp"
#include "elsa/outlier.hpp"
#include "signalkit/xcorr.hpp"
#include "topology/topology.hpp"

namespace elsa::core {

struct LocationConfig {
  std::int32_t tolerance = 3;  ///< delay slack, samples
  double tolerance_frac = 0.08;  ///< extra slack per unit of item delay
  /// Scope assignment: the chain's scope is the widest spread observed in at
  /// least this fraction of its occurrences (robust to one-off flukes).
  double scope_quantile = 0.80;
};

/// Events per signal, sorted by sample — the training outlier record.
using EventsBySignal = std::vector<std::vector<OutlierEvent>>;

/// Build the profile for one chain by replaying its occurrences.
LocationProfile build_location_profile(const Chain& chain,
                                       const EventsBySignal& events,
                                       const topo::Topology& topo,
                                       const LocationConfig& cfg = {});

/// Annotate every chain in place.
void annotate_locations(std::vector<Chain>& chains, const EventsBySignal& events,
                        const topo::Topology& topo,
                        const LocationConfig& cfg = {});

}  // namespace elsa::core
