// Delay-aware gradual itemset mining (paper §III.C): the data-mining half
// of the hybrid method, adapted from the sequential GRITE algorithm [2].
//
// Deviations from textbook GRITE, exactly as the paper prescribes:
//   * the first tree level is NOT all attributes — it is seeded with the
//     2-pair correlations found by the signal cross-correlation function,
//     which prunes the exponential search dramatically;
//   * items carry a per-signal delay theta, and candidate joins must be
//     delay-consistent (theta_13 ~= theta_12 + theta_23);
//   * only the ">=" comparison operator is used (we only care about
//     outlier-implies-outlier patterns);
//   * itemset significance is decided with the Mann–Whitney test.
//
// The optional thread pool parallelises candidate evaluation per level —
// the PGP-mc [3] direction the paper lists as future work.
#pragma once

#include <cstddef>
#include <vector>

#include "elsa/chain.hpp"
#include "signalkit/xcorr.hpp"

namespace elsa::core {

struct GriteConfig {
  int min_support = 4;
  double min_confidence = 0.20;
  double min_significance = 0.95;
  std::int32_t tolerance = 3;   ///< delay slack, samples
  /// Effective per-item slack = tolerance + tolerance_frac * item delay
  /// (long cascades jitter proportionally to their span), capped at
  /// max_tolerance.
  double tolerance_frac = 0.08;
  std::int32_t max_tolerance = 24;
  int max_level = 9;            ///< maximum itemset cardinality
  std::size_t max_candidates_per_level = 50000;
  std::size_t threads = 1;
  std::size_t total_samples = 0;
  /// Maximal-itemset filtering: drop an itemset subsumed by a superset
  /// whose support is at least this fraction of its own. 0 disables.
  double subsume_support_ratio = 0.6;
};

struct GriteStats {
  std::size_t seed_pairs = 0;
  std::size_t candidates_evaluated = 0;
  std::size_t accepted_per_level_total = 0;
  std::size_t levels_built = 0;
  std::size_t subsumed_removed = 0;
};

/// Effective per-item delay slack: tolerance + tolerance_frac * delay,
/// capped. This is THE tolerance formula of the GRITE adaptation — exposed
/// so the incremental miner (src/mining) applies byte-identical arithmetic
/// when it grows chains online.
std::int32_t grite_effective_tolerance(std::int32_t tolerance,
                                       double tolerance_frac,
                                       std::int32_t delay,
                                       std::int32_t cap = 24);

/// GRITE join delay-consistency: is an observed inter-item delay `got`
/// consistent with the expected delay `want`? (Uncapped slack — matches the
/// level-wise join's pair check.)
bool grite_delay_consistent(std::int32_t got, std::int32_t want,
                            std::int32_t tolerance, double tolerance_frac);

/// Support of an itemset: antecedent outliers (first item's stream) for
/// which every later item has an outlier within tolerance of its delay.
int itemset_support(const std::vector<ChainItem>& items,
                    const std::vector<sigkit::OutlierStream>& streams,
                    std::int32_t tolerance, double tolerance_frac = 0.0);

/// Mann–Whitney significance of the alignment (aligned indicator sample vs
/// a chance sample at seeded-random positions). Deterministic.
double itemset_significance(const std::vector<ChainItem>& items,
                            const std::vector<sigkit::OutlierStream>& streams,
                            std::int32_t tolerance, double tolerance_frac,
                            std::size_t total_samples);

/// Run the level-wise mining. Returned chains have items/support/
/// confidence/significance filled; failure/location annotation is the
/// pipeline's job. Includes the (possibly subsumed-filtered) level-1 pairs.
std::vector<Chain> mine_gradual_itemsets(
    const std::vector<sigkit::OutlierStream>& streams,
    const std::vector<sigkit::PairCorrelation>& seeds, const GriteConfig& cfg,
    GriteStats* stats = nullptr);

}  // namespace elsa::core
