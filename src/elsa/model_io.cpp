#include "elsa/model_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace elsa::core {

namespace {

void expect(std::istream& is, const std::string& keyword) {
  std::string word;
  if (!(is >> word) || word != keyword)
    throw std::runtime_error("load_model: expected '" + keyword + "', got '" +
                             word + "'");
}

}  // namespace

void save_model(std::ostream& os, const OfflineModel& model) {
  os << "ELSA-MODEL " << kModelFormatVersion << "\n";
  os << "method " << static_cast<int>(model.method) << "\n";
  os << "train " << model.train_begin_ms << " " << model.train_end_ms << "\n";

  os << "templates " << model.helo.size() << "\n";
  for (const auto& t : model.helo.templates()) {
    os << "T " << t.count << " " << t.tokens.size();
    for (const auto& tok : t.tokens) os << " " << tok;
    os << "\n";
  }

  os << "profiles " << model.profiles.size() << "\n";
  for (const auto& p : model.profiles) {
    os << "P " << static_cast<int>(p.cls) << " " << p.median << " " << p.mad
       << " " << p.spike_delta << " " << p.dropout_window << " "
       << p.dropout_min_count << " " << p.period << " " << p.mean << "\n";
  }

  os << "severities " << model.tmpl_severity.size() << "\n";
  os << "S";
  for (const auto s : model.tmpl_severity) os << " " << static_cast<int>(s);
  os << "\n";

  os << "chains " << model.chains.size() << "\n";
  for (const auto& c : model.chains) {
    os << "C " << c.items.size() << " " << c.support << " " << c.confidence
       << " " << c.significance << " " << c.failure_item << " "
       << static_cast<int>(c.location.scope) << " "
       << c.location.propagating_fraction << " "
       << c.location.initiator_included << " " << c.location.mean_nodes
       << " " << c.location.occurrences;
    for (const auto& item : c.items)
      os << " " << item.signal << ":" << item.delay;
    os << "\n";
  }
  os << "end\n";
}

void save_model_file(const std::string& path, const OfflineModel& model) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_model_file: cannot open " + path);
  save_model(os, model);
  if (!os) throw std::runtime_error("save_model_file: write failed " + path);
}

OfflineModel load_model(std::istream& is) {
  expect(is, "ELSA-MODEL");
  int version = 0;
  is >> version;
  if (version != kModelFormatVersion)
    throw std::runtime_error("load_model: unsupported format version " +
                             std::to_string(version));
  OfflineModel model;
  int method = 0;
  expect(is, "method");
  is >> method;
  if (method < 0 || method > 2)
    throw std::runtime_error("load_model: bad method id");
  model.method = static_cast<Method>(method);
  expect(is, "train");
  is >> model.train_begin_ms >> model.train_end_ms;

  expect(is, "templates");
  std::size_t n = 0;
  is >> n;
  std::vector<helo::Template> templates(n);
  for (std::size_t i = 0; i < n; ++i) {
    expect(is, "T");
    std::size_t tokens = 0;
    is >> templates[i].count >> tokens;
    templates[i].tokens.resize(tokens);
    for (auto& tok : templates[i].tokens) is >> tok;
  }
  if (!is) throw std::runtime_error("load_model: truncated template section");
  model.helo = helo::TemplateMiner::from_templates(std::move(templates));

  expect(is, "profiles");
  is >> n;
  model.profiles.resize(n);
  for (auto& p : model.profiles) {
    expect(is, "P");
    int cls = 0;
    is >> cls >> p.median >> p.mad >> p.spike_delta >> p.dropout_window >>
        p.dropout_min_count >> p.period >> p.mean;
    if (cls < 0 || cls > 2)
      throw std::runtime_error("load_model: bad signal class");
    p.cls = static_cast<sigkit::SignalClass>(cls);
  }

  expect(is, "severities");
  is >> n;
  expect(is, "S");
  model.tmpl_severity.resize(n);
  for (auto& s : model.tmpl_severity) {
    int v = 0;
    is >> v;
    if (v < 0 || v > 4) throw std::runtime_error("load_model: bad severity");
    s = static_cast<simlog::Severity>(v);
  }

  expect(is, "chains");
  is >> n;
  model.chains.resize(n);
  for (auto& c : model.chains) {
    expect(is, "C");
    std::size_t items = 0;
    int scope = 0;
    is >> items >> c.support >> c.confidence >> c.significance >>
        c.failure_item >> scope >> c.location.propagating_fraction >>
        c.location.initiator_included >> c.location.mean_nodes >>
        c.location.occurrences;
    if (scope < 0 || scope > 5)
      throw std::runtime_error("load_model: bad scope");
    c.location.scope = static_cast<topo::Scope>(scope);
    c.items.resize(items);
    for (auto& item : c.items) {
      std::string pair;
      is >> pair;
      const auto colon = pair.find(':');
      if (colon == std::string::npos)
        throw std::runtime_error("load_model: bad chain item '" + pair + "'");
      item.signal =
          static_cast<std::uint32_t>(std::stoul(pair.substr(0, colon)));
      item.delay = std::stoi(pair.substr(colon + 1));
      if (item.signal >= model.helo.size())
        throw std::runtime_error("load_model: chain references unknown template");
    }
  }
  expect(is, "end");
  if (!is) throw std::runtime_error("load_model: truncated file");
  return model;
}

OfflineModel load_model_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_model_file: cannot open " + path);
  return load_model(is);
}

// elsa-deterministic: pure byte fold — the digest primitive everything
// else's reproducibility bottoms out in.
std::uint64_t fnv1a_digest(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string model_to_string(const OfflineModel& model) {
  std::ostringstream os;
  save_model(os, model);
  return os.str();
}

// elsa-deterministic: the cross-config model fingerprint (DESIGN.md §13) —
// must hash identical bytes whatever the shard count or ingest order.
std::uint64_t model_digest(const OfflineModel& model) {
  return fnv1a_digest(model_to_string(model));
}

}  // namespace elsa::core
