// Report builders: the distribution analyses behind the paper's figures,
// computed from mined chains and experiment results. Each bench renders
// one of these; they live in the library so examples and downstream users
// get the same analyses programmatically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "elsa/chain.hpp"
#include "elsa/evaluate.hpp"
#include "elsa/pipeline.hpp"
#include "util/histogram.hpp"

namespace elsa::core {

/// Fig 5: distribution of the number of event types per mined sequence.
struct SequenceSizeReport {
  util::CategoryHistogram sizes;  ///< "2", "3", ... , "8+"
  double mean_size = 0.0;
  double fraction_above_8 = 0.0;
};
SequenceSizeReport sequence_size_report(const std::vector<Chain>& chains);

/// §IV.B + Fig 6: delay distributions, in seconds. `pair_delays` covers the
/// level-1 correlations; `span_delays` the first-to-last-symptom spans of
/// full sequences. Bin edges follow the paper's buckets.
struct DelayReport {
  util::EdgeHistogram pair_delays{std::vector<double>{0, 10, 60, 600}};
  util::EdgeHistogram span_delays{std::vector<double>{0, 10, 60, 600, 3600}};
  double max_span_s = 0.0;
};
DelayReport delay_report(const std::vector<Chain>& chains,
                         std::int64_t dt_ms);

/// Fig 7 + §V: propagation behaviour of mined sequences.
struct PropagationReport {
  std::size_t chains = 0;
  std::size_t propagating = 0;         ///< >1 node in a typical occurrence
  util::CategoryHistogram scopes;      ///< none/node/nodecard/midplane/...
  double fraction_propagating = 0.0;
  double fraction_beyond_midplane = 0.0;
  /// Of propagating chains: fraction whose first-symptom node is included
  /// in the affected set (the paper's argument for recall > precision
  /// damage, §V).
  double initiator_included = 0.0;
};
PropagationReport propagation_report(const std::vector<Chain>& chains);

/// Fig 9: per-category occurrence counts and correctly predicted counts,
/// as fractions of all failures (the paper's bar heights).
struct CategoryBar {
  std::string category;
  double occurrence_fraction = 0.0;  ///< share of all failures
  double predicted_fraction = 0.0;   ///< dark part of the bar
  std::size_t total = 0;
  std::size_t predicted = 0;
};
std::vector<CategoryBar> recall_breakdown(const EvalResult& eval);

/// §VI.A: analysis-window summary for the online phase.
struct AnalysisTimeReport {
  double mean_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
  std::size_t windows = 0;
};
AnalysisTimeReport analysis_time_report(const EngineStats& stats);

}  // namespace elsa::core
