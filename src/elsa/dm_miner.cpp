#include "elsa/dm_miner.hpp"

#include <algorithm>

namespace elsa::core {

namespace {

std::uint64_t pair_key(std::uint32_t a, std::uint32_t f) {
  return (static_cast<std::uint64_t>(a) << 32) | f;
}

}  // namespace

DmAccumulator::DmAccumulator(std::size_t num_templates,
                             std::vector<bool> is_failure, DmConfig cfg)
    : cfg_(cfg),
      is_failure_(std::move(is_failure)),
      recent_(num_templates),
      total_(num_templates, 0),
      prev_fail_(num_templates, 0),
      has_prev_fail_(num_templates, 0) {
  is_failure_.resize(num_templates, false);
}

void DmAccumulator::add(std::uint32_t tmpl, std::int64_t time_ms) {
  if (tmpl >= recent_.size()) return;
  if (open_ && time_ms != open_time_) flush();
  open_ = true;
  open_time_ = time_ms;
  open_batch_.push_back(tmpl);
}

void DmAccumulator::flush() {
  if (!open_ || open_batch_.empty()) {
    open_batch_.clear();
    return;
  }
  // Phase 1: all events at this timestamp become visible occurrences —
  // batch-mining's lower_bound matches an antecedent to a failure at the
  // SAME instant (delay 0), so a failure in this batch must see its
  // co-timed antecedents regardless of intra-timestamp arrival order.
  for (const std::uint32_t t : open_batch_) {
    recent_[t].push_back(open_time_);
    ++total_[t];
  }
  // Phase 2: failures in this batch consume matching antecedents. A
  // duplicate failure at the same instant matches nothing the first one
  // did not (lower_bound picks the first duplicate), which the prev_fail_
  // bound reproduces.
  for (const std::uint32_t t : open_batch_) {
    if (is_failure_[t]) match_failure(t, open_time_);
  }
  // Prune: an occurrence older than the window can never match a failure
  // at or after this instant. This is the bound that keeps memory O(window).
  const std::int64_t horizon = open_time_ - cfg_.window_ms;
  for (auto& dq : recent_) {
    while (!dq.empty() && dq.front() < horizon) dq.pop_front();
  }
  open_batch_.clear();
}

void DmAccumulator::match_failure(std::uint32_t f, std::int64_t tf) {
  // An antecedent occurrence t matches THIS failure exactly when tf is the
  // first failure-of-this-template at or after t (lower_bound semantics)
  // and tf - t <= window: i.e. t in [max(tf - window, prev_f + 1), tf].
  std::int64_t lo = tf - cfg_.window_ms;
  if (has_prev_fail_[f]) lo = std::max(lo, prev_fail_[f] + 1);
  for (std::uint32_t a = 0; a < recent_.size(); ++a) {
    if (a == f || recent_[a].empty()) continue;
    const auto& dq = recent_[a];
    auto it = std::lower_bound(dq.begin(), dq.end(), lo);
    if (it == dq.end()) continue;
    auto& ps = pairs_[pair_key(a, f)];
    for (; it != dq.end() && *it <= tf; ++it) {
      ++ps.support;
      ps.delay_sum_ms += static_cast<double>(tf - *it);
    }
  }
  prev_fail_[f] = tf;
  has_prev_fail_[f] = 1;
}

std::vector<Chain> DmAccumulator::rules(std::int64_t dt_ms, double train_days,
                                        DmStats* stats) {
  flush();
  DmStats local;
  DmStats& st = stats ? *stats : local;
  st = {};

  std::vector<Chain> out;
  const std::size_t n = total_.size();
  for (std::size_t f = 0; f < n; ++f) {
    if (!is_failure_[f] || total_[f] == 0) continue;
    for (std::size_t a = 0; a < n; ++a) {
      if (a == f || total_[a] == 0) continue;
      const double per_day = static_cast<double>(total_[a]) / train_days;
      if (per_day > cfg_.max_antecedent_per_day) continue;
      ++st.pairs_scanned;

      const auto it = pairs_.find(pair_key(static_cast<std::uint32_t>(a),
                                           static_cast<std::uint32_t>(f)));
      const int support = it == pairs_.end() ? 0 : it->second.support;
      const double delay_sum_ms =
          it == pairs_.end() ? 0.0 : it->second.delay_sum_ms;
      if (support < cfg_.min_support || support == 0) continue;
      const double conf =
          static_cast<double>(support) / static_cast<double>(total_[a]);
      if (conf < cfg_.min_confidence) continue;

      Chain c;
      const std::int32_t delay_samples = static_cast<std::int32_t>(
          delay_sum_ms / static_cast<double>(support) /
          static_cast<double>(dt_ms));
      c.items = {{static_cast<std::uint32_t>(a), 0},
                 {static_cast<std::uint32_t>(f), std::max(delay_samples, 0)}};
      c.support = support;
      c.confidence = conf;
      c.significance = conf;  // association rules carry no separate test
      out.push_back(std::move(c));
      ++st.rules;
    }
  }
  return out;
}

std::vector<Chain> mine_assoc_rules(
    const std::vector<std::vector<std::int64_t>>& occurrences,
    const std::vector<bool>& is_failure_template, std::int64_t dt_ms,
    double train_days, const DmConfig& cfg, DmStats* stats) {
  // Merge the per-template occurrence lists into one time-sorted stream and
  // replay it through the incremental accumulator. Per (antecedent,
  // failure) pair the matched deltas arrive in the same order as the
  // original antecedent-major scan (first-failure time is monotone in the
  // antecedent time), so even the floating-point delay sums are identical.
  std::vector<std::pair<std::int64_t, std::uint32_t>> stream;
  std::size_t total = 0;
  for (const auto& occ : occurrences) total += occ.size();
  stream.reserve(total);
  for (std::uint32_t t = 0; t < occurrences.size(); ++t)
    for (const std::int64_t ms : occurrences[t]) stream.push_back({ms, t});
  std::stable_sort(stream.begin(), stream.end(),
                   [](const auto& x, const auto& y) { return x.first < y.first; });

  DmAccumulator acc(occurrences.size(), is_failure_template, cfg);
  for (const auto& [ms, t] : stream) acc.add(t, ms);
  return acc.rules(dt_ms, train_days, stats);
}

}  // namespace elsa::core
