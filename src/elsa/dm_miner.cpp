#include "elsa/dm_miner.hpp"

#include <algorithm>

namespace elsa::core {

std::vector<Chain> mine_assoc_rules(
    const std::vector<std::vector<std::int64_t>>& occurrences,
    const std::vector<bool>& is_failure_template, std::int64_t dt_ms,
    double train_days, const DmConfig& cfg, DmStats* stats) {
  DmStats local;
  DmStats& st = stats ? *stats : local;
  st = {};

  std::vector<Chain> rules;
  const std::size_t n = occurrences.size();
  for (std::size_t f = 0; f < n; ++f) {
    if (!is_failure_template[f] || occurrences[f].empty()) continue;
    for (std::size_t a = 0; a < n; ++a) {
      if (a == f || occurrences[a].empty()) continue;
      const double per_day =
          static_cast<double>(occurrences[a].size()) / train_days;
      if (per_day > cfg.max_antecedent_per_day) continue;
      ++st.pairs_scanned;

      // For each antecedent occurrence, the first failure inside the window.
      int support = 0;
      double delay_sum_ms = 0.0;
      const auto& fa = occurrences[f];
      for (const std::int64_t t : occurrences[a]) {
        const auto it = std::lower_bound(fa.begin(), fa.end(), t);
        if (it != fa.end() && *it - t <= cfg.window_ms) {
          ++support;
          delay_sum_ms += static_cast<double>(*it - t);
        }
      }
      if (support < cfg.min_support) continue;
      const double conf = static_cast<double>(support) /
                          static_cast<double>(occurrences[a].size());
      if (conf < cfg.min_confidence) continue;

      Chain c;
      const std::int32_t delay_samples = static_cast<std::int32_t>(
          delay_sum_ms / static_cast<double>(support) /
          static_cast<double>(dt_ms));
      c.items = {{static_cast<std::uint32_t>(a), 0},
                 {static_cast<std::uint32_t>(f), std::max(delay_samples, 0)}};
      c.support = support;
      c.confidence = conf;
      c.significance = conf;  // association rules carry no separate test
      rules.push_back(std::move(c));
      ++st.rules;
    }
  }
  return rules;
}

}  // namespace elsa::core
