// Prediction-replay checkpoint simulation: the missing link between the
// paper's two evaluation halves. Table IV models prediction as abstract
// (precision, recall) rates; this module instead replays the ACTUAL alarm
// stream a predictor produced against the ACTUAL injected failures — with
// their real timing, lead times, and false alarms — and measures the waste
// a coordinated checkpoint-restart application would have experienced.
//
// Semantics (matching §VI.B's assumptions): the application spans the whole
// machine and checkpoints globally every T (Young's interval against the
// MTTF of UNpredicted failures). A correct, in-time alarm triggers one
// proactive checkpoint just before the failure, so only the restart cost
// R + D is paid; a missed failure additionally loses the work since the
// last checkpoint; every false alarm costs one extra checkpoint (which, as
// in reality, also happens to reset the at-risk work).
#pragma once

#include <cstdint>

#include "ckpt/waste_model.hpp"
#include "elsa/evaluate.hpp"

namespace elsa::core {

struct ReplayConfig {
  /// Checkpoint parameters in SECONDS (trace timestamps are ms).
  ckpt::CkptParams params{60.0, 300.0, 60.0, 86'400.0};
  std::int64_t t_begin_ms = 0;  ///< replay window (the test period)
  std::int64_t t_end_ms = 0;
  /// Override the checkpoint interval (seconds); 0 = recall-adjusted Young.
  double interval_s = 0.0;
};

struct ReplayResult {
  double wall_s = 0.0;
  double useful_s = 0.0;
  double lost_work_s = 0.0;       ///< rolled-back computation
  double checkpoint_cost_s = 0.0;
  double restart_cost_s = 0.0;
  std::size_t failures = 0;
  std::size_t predicted_in_time = 0;
  std::size_t false_alarms = 0;
  std::size_t checkpoints = 0;
  double interval_s = 0.0;  ///< interval actually used

  double waste() const {
    return wall_s > 0.0 ? (wall_s - useful_s) / wall_s : 0.0;
  }
};

/// Replay `eval`'s scored outcome (produced by evaluate_predictions on the
/// same faults/predictions) through the checkpoint model.
ReplayResult replay_checkpointing(
    const std::vector<simlog::GroundTruthFault>& faults,
    const std::vector<Prediction>& predictions, const EvalResult& eval,
    const ReplayConfig& cfg);

}  // namespace elsa::core
