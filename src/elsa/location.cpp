#include "elsa/location.hpp"

#include <algorithm>

namespace elsa::core {

namespace {

/// Events of `signal` with sample in [t - tol, t + tol].
template <typename Fn>
void for_events_near(const std::vector<OutlierEvent>& evs, std::int32_t t,
                     std::int32_t tol, Fn&& fn) {
  auto it = std::lower_bound(
      evs.begin(), evs.end(), t - tol,
      [](const OutlierEvent& e, std::int32_t v) { return e.sample < v; });
  for (; it != evs.end() && it->sample <= t + tol; ++it) fn(*it);
}

}  // namespace

LocationProfile build_location_profile(const Chain& chain,
                                       const EventsBySignal& events,
                                       const topo::Topology& topo,
                                       const LocationConfig& cfg) {
  LocationProfile prof;
  if (chain.items.empty()) return prof;

  std::vector<topo::Scope> spreads;
  std::size_t propagating = 0;
  std::size_t initiator_in = 0;
  double node_sum = 0.0;

  const auto& first_events = events[chain.items.front().signal];
  for (const auto& fe : first_events) {
    // Check the full chain aligns at this occurrence, collecting nodes.
    std::vector<std::int32_t> nodes(fe.nodes);
    std::vector<std::int32_t> later_nodes;
    bool complete = true;
    for (std::size_t j = 1; j < chain.items.size(); ++j) {
      const auto& item = chain.items[j];
      const std::int32_t tol = std::min(
          24, cfg.tolerance + static_cast<std::int32_t>(
                                  cfg.tolerance_frac *
                                  static_cast<double>(item.delay)));
      bool found = false;
      for_events_near(events[item.signal], fe.sample + item.delay, tol,
                      [&](const OutlierEvent& e) {
                        found = true;
                        for (const std::int32_t n : e.nodes) {
                          nodes.push_back(n);
                          later_nodes.push_back(n);
                        }
                      });
      if (!found) {
        complete = false;
        break;
      }
    }
    if (!complete) continue;

    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    // Service-node records carry no node id (-1); drop for spread analysis.
    while (!nodes.empty() && nodes.front() < 0) nodes.erase(nodes.begin());

    ++prof.occurrences;
    node_sum += static_cast<double>(nodes.size());
    spreads.push_back(topo.classify_spread(nodes));
    if (nodes.size() > 1) ++propagating;

    // Is the first-symptom node part of the later affected set?
    bool included = later_nodes.empty() || fe.nodes.empty();
    for (const std::int32_t n : fe.nodes)
      if (std::find(later_nodes.begin(), later_nodes.end(), n) !=
          later_nodes.end()) {
        included = true;
        break;
      }
    if (included) ++initiator_in;
  }

  if (prof.occurrences == 0) return prof;
  prof.propagating_fraction =
      static_cast<double>(propagating) / prof.occurrences;
  prof.initiator_included = static_cast<double>(initiator_in) / prof.occurrences;
  prof.mean_nodes = node_sum / prof.occurrences;

  // Scope at the requested quantile of the observed spreads.
  std::sort(spreads.begin(), spreads.end(),
            [](topo::Scope a, topo::Scope b) {
              return static_cast<int>(a) < static_cast<int>(b);
            });
  const std::size_t idx = std::min(
      spreads.size() - 1,
      static_cast<std::size_t>(cfg.scope_quantile *
                               static_cast<double>(spreads.size())));
  prof.scope = spreads[idx];
  return prof;
}

void annotate_locations(std::vector<Chain>& chains,
                        const EventsBySignal& events,
                        const topo::Topology& topo, const LocationConfig& cfg) {
  for (auto& c : chains)
    c.location = build_location_profile(c, events, topo, cfg);
}

}  // namespace elsa::core
