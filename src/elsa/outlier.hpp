// Online outlier detection (paper §III.B.1, Fig 3): a causal moving-window
// median filter with replacement. Each observed bucket count y_k is compared
// against the median of the recent window; if the distance exceeds the
// signal's predefined threshold, y_k is declared an outlier and a
// replacement value consistent with the window is recorded instead — this
// keeps a long fault burst from dragging the median up and masking itself
// (the paper's "replacement strategy").
//
// Dropout detection for periodic signals extends the same filter: a rolling
// window sum falling far below the expected count flags the silence that
// precedes node-card/crash failures.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "elsa/profile.hpp"

namespace elsa::core {

enum class OutlierKind : std::uint8_t {
  None,
  Spike,       ///< count far above the running median
  Occurrence,  ///< any activity on a silent signal
  Dropout,     ///< periodic signal went quiet
};

const char* to_string(OutlierKind k);

/// Exact sliding median over small non-negative integers in O(1) amortised
/// per push, via a frequency table and an incrementally maintained median
/// pointer. Bucket counts are clamped to `kMaxValue`. This is the hot path
/// of the online phase (every signal, every 10 s bucket).
class CountingSlidingMedian {
 public:
  static constexpr std::uint32_t kMaxValue = 4095;

  explicit CountingSlidingMedian(std::size_t window);

  void push(double x);
  double median() const;
  std::size_t size() const { return fifo_.size(); }
  bool full() const { return fifo_.size() == window_; }

 private:
  std::uint32_t clamp(double x) const;
  /// Re-derive the median from the frequency table. O(kMaxValue) but only
  /// called to re-sync; steady-state updates walk at most a few steps.
  void recompute();

  std::size_t window_;
  std::deque<std::uint32_t> fifo_;
  std::vector<std::uint32_t> freq_;
  std::uint32_t median_val_ = 0;
  std::size_t below_ = 0;  ///< count of samples strictly below median_val_
};

/// Behavioural switches distinguishing this paper's detector from the
/// earlier pure-signal ELSA [4] it improves upon. The defaults are the
/// paper's new detector; the pure-signal baseline runs with both off.
struct DetectorOptions {
  /// Record the window median in place of an outlier sample so a sustained
  /// burst cannot inflate its own baseline (§III.B.1's replacement
  /// strategy).
  bool replacement = true;
  /// Report one event per anomalous episode instead of one per bucket.
  bool debounce = true;
};

/// Per-signal online detector; feed one bucket count per sample period.
class OnlineDetector {
 public:
  OnlineDetector(const SignalProfile& profile, std::size_t median_window,
                 DetectorOptions options = {});

  struct Result {
    OutlierKind kind = OutlierKind::None;
    double replacement = 0.0;  ///< value recorded in place of an outlier
    /// True when this sample *starts* an anomalous episode. Consecutive
    /// anomalous buckets report the kind but not `onset`; chain matching
    /// keys off onsets so a 40 s burst is one event, not four.
    bool onset = false;
  };

  Result feed(double y);

  const SignalProfile& profile() const { return profile_; }

 private:
  SignalProfile profile_;
  DetectorOptions options_;
  CountingSlidingMedian median_;
  // Rolling sum for dropout detection.
  std::deque<float> drop_window_;
  double drop_sum_ = 0.0;
  bool in_spike_ = false;
  bool in_dropout_ = false;
  std::size_t samples_seen_ = 0;
};

/// One anomalous episode onset, with the nodes observed in the triggering
/// bucket (empty for dropouts — nothing was logged).
struct OutlierEvent {
  std::int32_t sample = 0;
  OutlierKind kind = OutlierKind::None;
  std::vector<std::int32_t> nodes;
};

}  // namespace elsa::core
