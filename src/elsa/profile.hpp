// Per-signal characterisation produced by the offline phase (paper §III.A/B):
// the signal's class, its normal level, and the outlier thresholds derived
// from training data. The online outlier detector is configured exclusively
// from this profile — "we use predefined thresholds for each signal,
// specified automatically in the preprocessing step" (§III.B.1).
#pragma once

#include <cstddef>
#include <vector>

#include "signalkit/classify.hpp"

namespace elsa::core {

struct SignalProfile {
  sigkit::SignalClass cls = sigkit::SignalClass::Silent;
  double median = 0.0;       ///< training median of bucket counts
  double mad = 0.0;          ///< training MAD of bucket counts
  /// Spike gate: a bucket is an outlier when (count - running median) exceeds
  /// this delta.
  double spike_delta = 0.5;
  /// Dropout detection (periodic signals only): rolling window length in
  /// samples and the minimum expected count; 0 disables.
  std::size_t dropout_window = 0;
  double dropout_min_count = 0.0;
  /// Detected base period in samples (periodic signals only).
  std::size_t period = 0;
  /// Mean bucket count over training (for docs and dropout expectation).
  double mean = 0.0;
};

struct ProfileConfig {
  sigkit::ClassifierConfig classifier;
  /// Spike gate = max(spike_sigmas * 1.4826 * MAD, spike_min_delta).
  double spike_sigmas = 4.0;
  double spike_min_delta = 2.5;
  /// Dropout window = dropout_periods * detected period.
  double dropout_periods = 3.0;
  /// Dropout triggers when window sum < dropout_fraction * expected.
  double dropout_fraction = 0.25;
  /// Dropouts are only meaningful when the expected count per window is at
  /// least this (aggregated many-emitter signals never qualify — one quiet
  /// emitter cannot be seen in the aggregate, as DESIGN.md discusses).
  double dropout_min_expected = 2.0;
};

/// Characterise one signal from its training samples.
SignalProfile build_profile(const std::vector<double>& train,
                            const ProfileConfig& cfg = {});

}  // namespace elsa::core
