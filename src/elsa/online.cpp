#include "elsa/online.hpp"

#include <algorithm>

namespace elsa::core {

double EngineStats::mean_analysis_ms() const {
  if (analysis_window_ms.empty()) return 0.0;
  double s = 0.0;
  for (float v : analysis_window_ms) s += v;
  return s / static_cast<double>(analysis_window_ms.size());
}

double EngineStats::max_analysis_ms() const {
  double m = 0.0;
  for (float v : analysis_window_ms) m = std::max(m, static_cast<double>(v));
  return m;
}

ModelState ModelState::build(std::vector<Chain> chains,
                             std::vector<SignalProfile> profiles) {
  ModelState m;
  m.chains = std::move(chains);
  m.profiles = std::move(profiles);
  m.early_prefix_counts.assign(m.chains.size(), 0);
  for (std::size_t c = 0; c < m.chains.size(); ++c) {
    const Chain& chain = m.chains[c];
    if (!chain.predictive()) continue;
    const std::int32_t fail_delay =
        chain.items[static_cast<std::size_t>(chain.failure_item)].delay;
    for (std::size_t j = 0;
         j < static_cast<std::size_t>(chain.failure_item); ++j) {
      m.triggers[chain.items[j].signal].push_back({c, j});
      if (fail_delay - chain.items[j].delay >= 2) ++m.early_prefix_counts[c];
    }
  }
  return m;
}

OnlineEngine::OnlineEngine(const topo::Topology& topo,
                           std::vector<Chain> chains,
                           std::vector<SignalProfile> profiles,
                           EngineConfig cfg)
    : topo_(topo),
      owned_(std::make_unique<const ModelState>(
          ModelState::build(std::move(chains), std::move(profiles)))),
      model_(owned_.get()),
      cfg_(cfg) {
  chain_fires_.assign(model_->chains.size(), 0);
  detectors_.reserve(model_->profiles.size());
  for (const auto& p : model_->profiles)
    detectors_.emplace_back(p, cfg_.median_window, cfg_.detector);
}

void OnlineEngine::swap_model(const ModelState* m) {
  model_ = m;
  // Chain ids are indexes into the new model's chain vector: pending
  // partial matches and fire counts keyed by the old ids are void.
  pending_.clear();
  chain_fires_.assign(model_->chains.size(), 0);
  // Detector histories survive for templates both models know — the
  // observed signal stream did not change, only the rules reading it. New
  // templates get fresh detectors from the new model's profiles.
  for (std::size_t t = detectors_.size(); t < model_->profiles.size(); ++t)
    detectors_.emplace_back(model_->profiles[t], cfg_.median_window,
                            cfg_.detector);
}

void OnlineEngine::ensure_detector(std::uint32_t tmpl) {
  while (detectors_.size() <= tmpl) {
    // Event type first seen online (new software version, new component):
    // treat as a silent signal until the next offline phase characterises it.
    SignalProfile p;
    p.cls = sigkit::SignalClass::Silent;
    p.spike_delta = 0.5;
    // elsa-lint: allow(realtime-allocates): grows once per never-seen
    // template id — a model-size event, not a per-record one.
    detectors_.emplace_back(p, cfg_.median_window, cfg_.detector);
  }
}

// elsa-realtime: the per-record ingest hot loop — only reused scratch and
// bounded accumulators grow, each behind a reasoned allow at its site.
// elsa-deterministic: output depends only on the records and the model.
void OnlineEngine::feed(const simlog::LogRecord& rec, std::uint32_t tmpl) {
  ++stats_.records;

  if (cfg_.raw_event_matching) {
    // DM baseline: every record is a potential rule antecedent. A record
    // behind the latest one seen is clamped forward so the trigger sample
    // and queue clock never move backwards.
    std::int64_t t_ms = rec.time_ms;
    if (started_ && t_ms < last_time_ms_) {
      ++stats_.out_of_order;
      t_ms = last_time_ms_;
    } else {
      last_time_ms_ = t_ms;
      started_ = true;
    }
    double service = cfg_.cost.per_event_ms;
    const auto it = model_->triggers.find(tmpl);
    std::size_t fanout = it == model_->triggers.end() ? 0 : it->second.size();
    service += static_cast<double>(fanout) * cfg_.cost.per_chain_trigger_ms;
    server_free_ms_ =
        std::max(server_free_ms_, static_cast<double>(t_ms)) + service;
    if (fanout > 0) {
      ++stats_.raw_triggers;
      scratch_nodes_.clear();
      // elsa-lint: allow(realtime-allocates): one int into a reused
      // scratch buffer — capacity survives clear(), steady state is free.
      if (rec.node_id >= 0) scratch_nodes_.push_back(rec.node_id);
      const std::int32_t sample =
          static_cast<std::int32_t>(t_ms / cfg_.dt_ms);
      for (const Trigger& tr : it->second)
        trigger_chain(tr, sample, t_ms,
                      static_cast<std::int64_t>(server_free_ms_),
                      scratch_nodes_);
    }
    return;
  }

  if (!started_) {
    bucket_start_ms_ = rec.time_ms / cfg_.dt_ms * cfg_.dt_ms;
    started_ = true;
  }
  // A record that arrives after its bucket closed (small skew from a
  // concurrent ingest path) is attributed to the open bucket: its count
  // still contributes to the signal, one sample late at worst.
  std::int64_t t_ms = rec.time_ms;
  if (t_ms < bucket_start_ms_) {
    ++stats_.out_of_order;
    t_ms = bucket_start_ms_;
  }
  close_buckets_through(t_ms);

  // Queue cost of ingesting the record itself.
  server_free_ms_ =
      std::max(server_free_ms_, static_cast<double>(t_ms)) +
      cfg_.cost.per_event_ms;

  ensure_detector(tmpl);
  auto& [count, nodes] = bucket_activity_[tmpl];
  ++count;
  if (rec.node_id >= 0 && nodes.size() < 8 &&
      std::find(nodes.begin(), nodes.end(), rec.node_id) == nodes.end())
    // elsa-lint: allow(realtime-allocates): bounded dedup — at most eight
    // distinct node ids are remembered per (template, bucket).
    nodes.push_back(rec.node_id);
}

void OnlineEngine::close_buckets_through(std::int64_t t_ms) {
  while (started_ && t_ms >= bucket_start_ms_ + cfg_.dt_ms) close_one_bucket();
}

void OnlineEngine::close_one_bucket() {
  const std::int64_t bucket_end = bucket_start_ms_ + cfg_.dt_ms;
  ++stats_.buckets;

  double work_ms = 0.0;
  scratch_onset_count_ = 0;

  for (std::uint32_t tmpl = 0; tmpl < detectors_.size(); ++tmpl) {
    const auto it = bucket_activity_.find(tmpl);
    const double y =
        it == bucket_activity_.end() ? 0.0 : static_cast<double>(it->second.first);
    const auto r = detectors_[tmpl].feed(y);
    if (r.kind != OutlierKind::None && r.onset) {
      ++stats_.outlier_onsets;
      if (scratch_onset_count_ == scratch_onsets_.size())
        // elsa-lint: allow(realtime-allocates): amortised — the slot pool
        // grows to the peak onsets-per-bucket once, then is reused forever.
        scratch_onsets_.emplace_back();
      Onset& o = scratch_onsets_[scratch_onset_count_++];
      o.tmpl = tmpl;
      o.nodes.clear();
      if (it != bucket_activity_.end())
        // elsa-lint: allow(realtime-allocates): assign into a slot whose
        // capacity survived clear(); copies at most eight ids, no realloc
        // after warm-up.
        o.nodes.assign(it->second.second.begin(), it->second.second.end());
      work_ms += cfg_.cost.per_outlier_ms;
      const auto trig = model_->triggers.find(tmpl);
      if (trig != model_->triggers.end())
        work_ms += static_cast<double>(trig->second.size()) *
                   cfg_.cost.per_chain_trigger_ms;
    }
  }
  bucket_activity_.clear();

  if (scratch_onset_count_ > 0) {
    // The outlier batch enters the analysis queue when the bucket closes.
    const double completion =
        std::max(server_free_ms_, static_cast<double>(bucket_end)) + work_ms;
    server_free_ms_ = completion;
    const double window = completion - static_cast<double>(bucket_end);
    // elsa-lint: allow(realtime-allocates): the §VI.A per-bucket metric —
    // one float per outlier-bearing bucket, an output the caller reads.
    stats_.analysis_window_ms.push_back(static_cast<float>(window));

    for (std::size_t oi = 0; oi < scratch_onset_count_; ++oi) {
      const Onset& o = scratch_onsets_[oi];
      const auto trig = model_->triggers.find(o.tmpl);
      if (trig == model_->triggers.end()) continue;
      scratch_nodes_.clear();
      for (const std::int32_t n : o.nodes)
        // elsa-lint: allow(realtime-allocates): filtered copy into the
        // reused scratch buffer; capacity survives clear().
        if (n >= 0) scratch_nodes_.push_back(n);
      const std::int32_t sample =
          static_cast<std::int32_t>((bucket_end - cfg_.dt_ms) / cfg_.dt_ms);
      for (const Trigger& tr : trig->second)
        trigger_chain(tr, sample, bucket_end,
                      static_cast<std::int64_t>(completion), scratch_nodes_);
    }
  }
  bucket_start_ms_ = bucket_end;
}

void OnlineEngine::trigger_chain(const Trigger& tr, std::int32_t sample,
                                 std::int64_t trigger_ms,
                                 std::int64_t issue_ms,
                                 const std::vector<std::int32_t>& nodes) {
  const Chain& chain = model_->chains[tr.chain_id];
  if (model_->early_prefix_counts[tr.chain_id] < cfg_.min_prefix_matches ||
      cfg_.min_prefix_matches <= 1) {
    emit(tr.chain_id, tr.item_index, trigger_ms, issue_ms, nodes);
    return;
  }

  auto& pend = pending_[tr.chain_id];
  // Drop stale partials (older than the chain span plus slack).
  const std::int32_t horizon = chain.span() + 2 * cfg_.tolerance + 6;
  std::erase_if(pend, [&](const Pending& p) {
    return sample - p.sample > horizon;
  });

  // Does this observation confirm an earlier prefix item?
  const std::int32_t my_delay = chain.items[tr.item_index].delay;
  for (std::size_t i = 0; i < pend.size(); ++i) {
    const Pending& p = pend[i];
    if (p.item_index >= tr.item_index) continue;
    const std::int32_t expected =
        my_delay - chain.items[p.item_index].delay;
    const std::int32_t tol =
        cfg_.tolerance +
        static_cast<std::int32_t>(0.08 * static_cast<double>(expected));
    if (std::abs((sample - p.sample) - expected) > tol) continue;
    // Confirmed: merge observed locations, alarm from the later item.
    std::vector<std::int32_t> merged = p.nodes;
    for (const std::int32_t n : nodes)
      if (std::find(merged.begin(), merged.end(), n) == merged.end())
        // elsa-lint: allow(realtime-allocates): merging two <=8-id
        // location sets on the rare confirmed-prefix path.
        merged.push_back(n);
    pend.erase(pend.begin() + static_cast<std::ptrdiff_t>(i));
    emit(tr.chain_id, tr.item_index, trigger_ms, issue_ms, merged);
    return;
  }
  // First sighting: remember it and wait for corroboration.
  // elsa-lint: allow(realtime-allocates): bounded pending set — at most 64
  // partial matches are remembered per chain.
  if (pend.size() < 64) pend.push_back({sample, tr.item_index, nodes});
}

void OnlineEngine::emit(std::size_t chain_id, std::size_t item_index,
                        std::int64_t trigger_ms, std::int64_t issue_ms,
                        const std::vector<std::int32_t>& nodes) {
  const Chain& chain = model_->chains[chain_id];
  ++chain_fires_[chain_id];

  Prediction p;
  p.trigger_time_ms = trigger_ms;
  p.issue_time_ms = issue_ms;
  const std::int32_t remaining =
      chain.items[static_cast<std::size_t>(chain.failure_item)].delay -
      chain.items[item_index].delay;
  p.lead_ms = static_cast<std::int64_t>(remaining) * cfg_.dt_ms;
  p.predicted_time_ms = trigger_ms + p.lead_ms;
  p.tmpl = chain.items[static_cast<std::size_t>(chain.failure_item)].signal;
  p.chain_id = chain_id;
  p.confidence = chain.confidence;
  if (cfg_.use_location) {
    p.nodes = nodes;
    p.scope = chain.location.scope == topo::Scope::None
                  ? topo::Scope::Node
                  : chain.location.scope;
  } else {
    p.scope = topo::Scope::System;
  }

  // Dedupe: same predicted template, overlapping time window, overlapping
  // location -> one prediction.
  const std::int64_t window_ms = cfg_.dedupe_window_samples * cfg_.dt_ms;
  for (auto it = predictions_.rbegin(); it != predictions_.rend(); ++it) {
    if (trigger_ms - it->trigger_time_ms > window_ms) break;
    if (it->tmpl != p.tmpl) continue;
    if (std::llabs(it->predicted_time_ms - p.predicted_time_ms) > window_ms)
      continue;
    // Location overlap.
    bool overlap = it->nodes.empty() || p.nodes.empty();
    if (!overlap) {
      const auto wide = static_cast<int>(std::max(it->scope, p.scope));
      for (const std::int32_t a : it->nodes) {
        for (const std::int32_t b : p.nodes) {
          if (static_cast<int>(topo_.common_scope(a, b)) <= wide) {
            overlap = true;
            break;
          }
        }
        if (overlap) break;
      }
    }
    if (overlap) {
      ++stats_.duplicates_suppressed;
      return;
    }
  }

  // elsa-lint: allow(realtime-allocates): the engine's output accumulator
  // — one Prediction per emitted alarm, read back by the caller.
  predictions_.push_back(std::move(p));
  ++stats_.predictions_emitted;
}

void OnlineEngine::finish(std::int64_t t_end_ms) {
  if (!cfg_.raw_event_matching) close_buckets_through(t_end_ms);
  std::size_t used = 0;
  for (const std::size_t f : chain_fires_)
    if (f > 0) ++used;
  stats_.chains_used = used;
}

}  // namespace elsa::core
