#include "elsa/outlier.hpp"

#include <algorithm>
#include <cmath>

namespace elsa::core {

const char* to_string(OutlierKind k) {
  switch (k) {
    case OutlierKind::None: return "none";
    case OutlierKind::Spike: return "spike";
    case OutlierKind::Occurrence: return "occurrence";
    case OutlierKind::Dropout: return "dropout";
  }
  return "?";
}

CountingSlidingMedian::CountingSlidingMedian(std::size_t window)
    : window_(std::max<std::size_t>(1, window)), freq_(kMaxValue + 1, 0) {}

std::uint32_t CountingSlidingMedian::clamp(double x) const {
  if (x <= 0.0) return 0;
  if (x >= static_cast<double>(kMaxValue)) return kMaxValue;
  return static_cast<std::uint32_t>(x);
}

void CountingSlidingMedian::push(double x) {
  const std::uint32_t v = clamp(x);
  fifo_.push_back(v);
  ++freq_[v];
  if (v < median_val_) ++below_;

  if (fifo_.size() > window_) {
    const std::uint32_t old = fifo_.front();
    fifo_.pop_front();
    --freq_[old];
    if (old < median_val_) --below_;
  }

  // Re-centre the median pointer: we want the smallest value m such that
  // below_(m) <= (n-1)/2 < below_(m) + freq_[m].
  const std::size_t target = (fifo_.size() - 1) / 2;
  while (median_val_ > 0 && below_ > target) {
    --median_val_;
    below_ -= freq_[median_val_];
  }
  while (below_ + freq_[median_val_] <= target) {
    below_ += freq_[median_val_];
    ++median_val_;
  }
}

double CountingSlidingMedian::median() const {
  return fifo_.empty() ? 0.0 : static_cast<double>(median_val_);
}

void CountingSlidingMedian::recompute() {
  below_ = 0;
  median_val_ = 0;
  const std::size_t target = fifo_.empty() ? 0 : (fifo_.size() - 1) / 2;
  std::size_t acc = 0;
  for (std::uint32_t v = 0; v <= kMaxValue; ++v) {
    if (acc + freq_[v] > target) {
      median_val_ = v;
      below_ = acc;
      return;
    }
    acc += freq_[v];
  }
}

OnlineDetector::OnlineDetector(const SignalProfile& profile,
                               std::size_t median_window,
                               DetectorOptions options)
    : profile_(profile), options_(options), median_(median_window) {
  // Seed the median with the training level so the first online buckets are
  // judged against a sane baseline rather than an empty window.
  median_.push(profile_.median);
}

OnlineDetector::Result OnlineDetector::feed(double y) {
  Result r;
  ++samples_seen_;

  // Dropout tracking (periodic signals with few emitters only).
  if (profile_.dropout_window > 0) {
    drop_window_.push_back(static_cast<float>(y));
    drop_sum_ += y;
    if (drop_window_.size() > profile_.dropout_window) {
      drop_sum_ -= drop_window_.front();
      drop_window_.pop_front();
    }
    if (drop_window_.size() == profile_.dropout_window &&
        drop_sum_ < profile_.dropout_min_count) {
      r.kind = OutlierKind::Dropout;
      r.onset = options_.debounce ? !in_dropout_ : true;
      in_dropout_ = true;
    } else {
      in_dropout_ = false;
    }
  }

  // Spike / occurrence detection against the causal moving median. The
  // paper's window mixes raw and replaced values; we record the replaced
  // value (the window median) for outliers, which realises the same goal —
  // a sustained fault burst cannot inflate its own baseline.
  const double med = median_.median();
  const double dist = y - med;
  const bool spike = dist > profile_.spike_delta;
  if (spike) {
    r.replacement = med;
    if (r.kind == OutlierKind::None) {
      r.kind = profile_.cls == sigkit::SignalClass::Silent
                   ? OutlierKind::Occurrence
                   : OutlierKind::Spike;
      r.onset = options_.debounce ? !in_spike_ : true;
    }
    in_spike_ = true;
    median_.push(options_.replacement ? med : y);
  } else {
    r.replacement = y;
    in_spike_ = false;
    median_.push(y);
  }
  return r;
}

}  // namespace elsa::core
