#include "elsa/pipeline.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>

namespace elsa::core {

const char* to_string(Method m) {
  switch (m) {
    case Method::Hybrid: return "ELSA hybrid";
    case Method::SignalOnly: return "ELSA signal";
    case Method::DataMining: return "Data mining";
  }
  return "?";
}

PipelineConfig::PipelineConfig() {
  // Hybrid seeds: solid pairs only; GRITE grows and then prunes them.
  xcorr.max_lag = 540;
  xcorr.tolerance = 3;
  xcorr.min_support = 3;
  xcorr.min_confidence = 0.35;
  xcorr.min_significance = 0.95;
  xcorr.max_chance_pvalue = 1e-7;

  // Pure-signal baseline: weaker gates, more (noisier) pairs.
  xcorr_signal_only = xcorr;
  xcorr_signal_only.min_support = 3;
  xcorr_signal_only.min_confidence = 0.15;
  xcorr_signal_only.min_significance = 0.90;
  xcorr_signal_only.max_chance_pvalue = 3e-5;

  grite.min_support = 3;
  grite.min_confidence = 0.30;
  grite.tolerance = 3;
}

std::vector<simlog::Severity> majority_severity(
    std::size_t num_templates, const std::vector<std::uint32_t>& tids,
    const std::vector<simlog::LogRecord>& records, std::size_t count) {
  // counts[template][severity]
  std::vector<std::array<std::uint32_t, 5>> counts(
      num_templates, std::array<std::uint32_t, 5>{});
  for (std::size_t i = 0; i < count && i < records.size(); ++i) {
    const std::uint32_t t = tids[i];
    if (t >= num_templates) continue;
    ++counts[t][static_cast<std::size_t>(records[i].severity)];
  }
  std::vector<simlog::Severity> out(num_templates, simlog::Severity::Info);
  for (std::size_t t = 0; t < num_templates; ++t) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < 5; ++s)
      if (counts[t][s] > counts[t][best]) best = s;
    out[t] = static_cast<simlog::Severity>(best);
  }
  return out;
}

std::size_t annotate_failure_items(
    std::vector<Chain>& chains, const std::vector<simlog::Severity>& severity) {
  std::size_t non_error = 0;
  for (auto& c : chains) {
    c.failure_item = -1;
    for (std::size_t j = c.items.size(); j-- > 0;) {
      const std::uint32_t t = c.items[j].signal;
      if (t < severity.size() && simlog::is_failure_severity(severity[t])) {
        c.failure_item = static_cast<std::int32_t>(j);
        break;
      }
    }
    if (c.failure_item < 0) ++non_error;
  }
  return non_error;
}

namespace {

/// Run the online detector over a training signal and return the outlier
/// onsets (the offline phase shares the detector so the two phases see the
/// same anomalies).
sigkit::OutlierStream extract_stream(const SignalProfile& profile,
                                     const sigkit::Signal& signal,
                                     std::size_t median_window,
                                     DetectorOptions options) {
  sigkit::OutlierStream stream;
  OnlineDetector det(profile, median_window, options);
  for (std::size_t i = 0; i < signal.v.size(); ++i) {
    const auto r = det.feed(signal.v[i]);
    if (r.kind != OutlierKind::None && r.onset)
      stream.push_back(static_cast<std::int32_t>(i));
  }
  return stream;
}

}  // namespace

OfflineModel train_offline(const simlog::Trace& trace,
                           std::int64_t train_end_ms, Method method,
                           const PipelineConfig& cfg) {
  OfflineModel model;
  model.method = method;
  model.train_begin_ms = trace.t_begin_ms;
  model.train_end_ms = train_end_ms;

  // --- 1. HELO preprocessing over the training records -------------------
  std::size_t train_count = 0;
  std::vector<std::uint32_t> tids;
  tids.reserve(trace.records.size());
  for (const auto& rec : trace.records) {
    if (rec.time_ms >= train_end_ms) break;
    tids.push_back(model.helo.classify(rec.message));
    ++train_count;
  }
  const std::size_t T = model.helo.size();

  // --- 2. Signal extraction (10 s sampling) -------------------------------
  sigkit::SignalSet signals(trace.t_begin_ms, train_end_ms, cfg.dt_ms, T);
  for (std::size_t i = 0; i < train_count; ++i)
    signals.add_event(tids[i], trace.records[i].time_ms);

  // --- 3. Per-signal characterisation -------------------------------------
  model.profiles.resize(T);
  for (std::size_t t = 0; t < T; ++t)
    model.profiles[t] =
        build_profile(signals.signal(t).as_doubles(), cfg.profile);
  model.tmpl_severity =
      majority_severity(T, tids, trace.records, train_count);

  // --- 4. Offline outlier streams + per-onset node sets --------------------
  const DetectorOptions det_options = method == Method::SignalOnly
                                          ? cfg.signal_only_detector
                                          : cfg.engine.detector;
  model.train_outliers.resize(T);
  model.train_events.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    model.train_outliers[t] = extract_stream(
        model.profiles[t], signals.signal(t), cfg.engine.median_window,
        det_options);
    auto& evs = model.train_events[t];
    evs.reserve(model.train_outliers[t].size());
    for (const std::int32_t s : model.train_outliers[t]) {
      OutlierEvent e;
      e.sample = s;
      evs.push_back(std::move(e));
    }
  }
  // Attach nodes: one pass over training records, binary search per record.
  for (std::size_t i = 0; i < train_count; ++i) {
    const auto& rec = trace.records[i];
    if (rec.node_id < 0) continue;
    const std::uint32_t t = tids[i];
    const std::int32_t sample = static_cast<std::int32_t>(
        (rec.time_ms - trace.t_begin_ms) / cfg.dt_ms);
    auto& stream = model.train_outliers[t];
    // A burst's onset bucket may precede this record's bucket by a little;
    // credit the nearest onset within a small backward window.
    auto it = std::upper_bound(stream.begin(), stream.end(), sample);
    if (it == stream.begin()) continue;
    --it;
    if (sample - *it > 6) continue;  // not part of this episode
    auto& nodes =
        model.train_events[t][static_cast<std::size_t>(it - stream.begin())]
            .nodes;
    if (nodes.size() < 8 &&
        std::find(nodes.begin(), nodes.end(), rec.node_id) == nodes.end())
      nodes.push_back(rec.node_id);
  }

  // --- 5. Correlation mining (method-specific) -----------------------------
  const std::size_t total_samples = signals.samples();
  switch (method) {
    case Method::Hybrid: {
      sigkit::XcorrConfig xc = cfg.xcorr;
      xc.total_samples = total_samples;
      model.seeds =
          sigkit::correlate_all(model.train_outliers, xc, cfg.threads);
      GriteConfig gc = cfg.grite;
      gc.total_samples = total_samples;
      gc.threads = cfg.threads;
      model.chains = mine_gradual_itemsets(model.train_outliers, model.seeds,
                                           gc, &model.grite_stats);
      break;
    }
    case Method::SignalOnly: {
      sigkit::XcorrConfig xc = cfg.xcorr_signal_only;
      xc.total_samples = total_samples;
      model.seeds =
          sigkit::correlate_all(model.train_outliers, xc, cfg.threads);
      model.chains.reserve(model.seeds.size());
      for (const auto& s : model.seeds) {
        Chain c;
        c.items = {{static_cast<std::uint32_t>(s.a), 0},
                   {static_cast<std::uint32_t>(s.b), s.delay}};
        c.support = s.support;
        c.confidence = s.confidence;
        c.significance = s.significance;
        model.chains.push_back(std::move(c));
      }
      break;
    }
    case Method::DataMining: {
      std::vector<std::vector<std::int64_t>> occurrences(T);
      for (std::size_t i = 0; i < train_count; ++i)
        occurrences[tids[i]].push_back(trace.records[i].time_ms);
      std::vector<bool> is_failure(T, false);
      for (std::size_t t = 0; t < T; ++t)
        is_failure[t] = simlog::is_failure_severity(model.tmpl_severity[t]);
      const double train_days =
          static_cast<double>(train_end_ms - trace.t_begin_ms) / 86400000.0;
      model.chains = mine_assoc_rules(occurrences, is_failure, cfg.dt_ms,
                                      train_days, cfg.dm, &model.dm_stats);
      break;
    }
  }

  // --- 6. Failure annotation + location profiles ---------------------------
  model.non_error_chains =
      annotate_failure_items(model.chains, model.tmpl_severity);
  if (method != Method::DataMining) {
    LocationConfig lc;
    lc.tolerance = cfg.grite.tolerance;
    annotate_locations(model.chains, model.train_events, trace.topology, lc);
  }
  return model;
}

ExperimentResult run_experiment(const simlog::Trace& trace, double train_days,
                                Method method, const PipelineConfig& cfg) {
  const std::int64_t train_end_ms =
      trace.t_begin_ms + static_cast<std::int64_t>(train_days * 86400000.0);

  ExperimentResult result;
  result.model = train_offline(trace, train_end_ms, method, cfg);
  OfflineModel& model = result.model;

  EngineConfig ec = cfg.engine;
  ec.dt_ms = cfg.dt_ms;
  ec.tolerance = cfg.grite.tolerance;
  ec.use_location = method != Method::DataMining;
  ec.raw_event_matching = method == Method::DataMining;
  if (method == Method::SignalOnly) {
    ec.cost = cfg.signal_only_cost;
    ec.detector = cfg.signal_only_detector;
  }

  OnlineEngine engine(trace.topology, model.chains, model.profiles, ec);

  // Failure-record templates per fault, resolved as records stream by.
  std::unordered_map<std::uint32_t, std::size_t> fault_index;
  for (std::size_t i = 0; i < trace.faults.size(); ++i)
    fault_index[trace.faults[i].id] = i;
  result.fault_failure_tmpls.assign(trace.faults.size(), {});

  for (const auto& rec : trace.records) {
    // Resolve terminal templates for all records (train + test): the HELO
    // ids are stable across phases because the same miner continues.
    std::uint32_t tid;
    if (rec.time_ms < train_end_ms) {
      tid = model.helo.classify_const(rec.message);
      if (tid == helo::TemplateMiner::kNoTemplate)
        tid = model.helo.classify(rec.message);
    } else {
      tid = model.helo.classify(rec.message);
      engine.feed(rec, tid);
    }
    if (rec.fault_id != 0 && simlog::is_failure_severity(rec.severity)) {
      const auto it = fault_index.find(rec.fault_id);
      if (it != fault_index.end()) {
        auto& tmpls = result.fault_failure_tmpls[it->second];
        if (std::find(tmpls.begin(), tmpls.end(), tid) == tmpls.end())
          tmpls.push_back(tid);
      }
    }
  }
  engine.finish(trace.t_end_ms);

  result.predictions = engine.predictions();
  result.engine_stats = engine.stats();
  result.eval = evaluate_predictions(result.predictions, trace.faults,
                                     result.fault_failure_tmpls,
                                     trace.topology, train_end_ms, cfg.eval);
  return result;
}

}  // namespace elsa::core
