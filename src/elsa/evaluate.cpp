#include "elsa/evaluate.hpp"

#include <algorithm>

namespace elsa::core {

double EvalResult::lead_fraction_above(double seconds) const {
  if (lead_times_s.empty()) return 0.0;
  std::size_t n = 0;
  for (double v : lead_times_s)
    if (v > seconds) ++n;
  return static_cast<double>(n) / static_cast<double>(lead_times_s.size());
}

namespace {

bool location_matches(const Prediction& p,
                      const simlog::GroundTruthFault& f,
                      const topo::Topology& topo) {
  if (p.scope == topo::Scope::System || p.nodes.empty()) return true;
  if (f.affected_nodes.empty()) return true;  // service-level failure
  for (const std::int32_t b : p.nodes) {
    for (const std::int32_t a : f.affected_nodes) {
      if (static_cast<int>(topo.common_scope(b, a)) <=
          static_cast<int>(p.scope))
        return true;
    }
  }
  return false;
}

}  // namespace

EvalResult evaluate_predictions(
    const std::vector<Prediction>& predictions,
    const std::vector<simlog::GroundTruthFault>& faults,
    const std::vector<std::vector<std::uint32_t>>& fault_failure_tmpls,
    const topo::Topology& topo, std::int64_t test_begin_ms,
    const EvalConfig& cfg) {
  EvalResult r;

  // Scoreboard per fault: earliest correct prediction + late-only flag.
  struct FaultScore {
    bool in_range = false;
    bool predicted = false;
    bool late_only = false;
    std::int64_t earliest_issue = 0;
  };
  std::vector<FaultScore> scores(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i)
    scores[i].in_range = faults[i].fail_time_ms >= test_begin_ms;
  r.prediction_correct.assign(predictions.size(), 0);

  for (const Prediction& p : predictions) {
    ++r.predictions;
    const std::int64_t slack =
        cfg.slack_ms +
        static_cast<std::int64_t>(cfg.slack_lead_factor *
                                  static_cast<double>(p.lead_ms));
    bool correct = false;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (!scores[i].in_range) continue;
      const auto& f = faults[i];
      const auto& tmpls = fault_failure_tmpls[i];
      if (std::find(tmpls.begin(), tmpls.end(), p.tmpl) == tmpls.end())
        continue;
      if (f.fail_time_ms > p.predicted_time_ms + slack) continue;
      if (f.fail_time_ms < p.trigger_time_ms - cfg.trigger_grace_ms)
        continue;
      if (cfg.require_location && !location_matches(p, f, topo)) continue;
      // Template, window, and location all line up: the prediction named a
      // real failure, so it counts as correct (precision). For recall the
      // prediction must also have been ISSUED before the failure — a
      // correct-but-late prediction cannot trigger proactive action
      // (paper §VI.A counts these as faults lost to analysis time).
      correct = true;
      if (p.issue_time_ms <= f.fail_time_ms) {
        if (!scores[i].predicted ||
            p.issue_time_ms < scores[i].earliest_issue) {
          scores[i].predicted = true;
          scores[i].earliest_issue = p.issue_time_ms;
        }
      } else {
        scores[i].late_only = true;  // matched, but analysis was too slow
      }
    }
    if (correct) {
      ++r.correct_predictions;
      r.prediction_correct[r.predictions - 1] = 1;
    }
  }

  r.fault_predicted.assign(faults.size(), 0);
  r.fault_alarm_time_ms.assign(faults.size(), -1);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (scores[i].predicted) {
      r.fault_predicted[i] = 1;
      r.fault_alarm_time_ms[i] = scores[i].earliest_issue;
    }
    if (!scores[i].in_range) continue;
    ++r.faults;
    const auto& f = faults[i];
    auto cat = std::find_if(
        r.per_category.begin(), r.per_category.end(),
        [&](const CategoryRecall& c) { return c.category == f.category; });
    if (cat == r.per_category.end()) {
      r.per_category.push_back({f.category, 0, 0});
      cat = r.per_category.end() - 1;
    }
    ++cat->total;
    if (scores[i].predicted) {
      ++r.predicted_faults;
      ++cat->predicted;
      r.lead_times_s.push_back(
          static_cast<double>(f.fail_time_ms - scores[i].earliest_issue) /
          1000.0);
    } else if (scores[i].late_only) {
      ++r.missed_late;
    }
  }
  std::sort(r.per_category.begin(), r.per_category.end(),
            [](const CategoryRecall& a, const CategoryRecall& b) {
              return a.category < b.category;
            });
  return r;
}

}  // namespace elsa::core
