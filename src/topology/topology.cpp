#include "topology/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace elsa::topo {

const char* to_string(Scope s) {
  switch (s) {
    case Scope::None: return "none";
    case Scope::Node: return "node";
    case Scope::NodeCard: return "nodecard";
    case Scope::Midplane: return "midplane";
    case Scope::Rack: return "rack";
    case Scope::System: return "system";
  }
  return "?";
}

Topology Topology::bluegene(std::int32_t racks, std::int32_t midplanes_per_rack,
                            std::int32_t nodecards_per_midplane,
                            std::int32_t nodes_per_nodecard) {
  if (racks <= 0 || midplanes_per_rack <= 0 || nodecards_per_midplane <= 0 ||
      nodes_per_nodecard <= 0)
    throw std::invalid_argument("Topology::bluegene: non-positive dimension");
  Topology t;
  t.racks_ = racks;
  t.midplanes_per_rack_ = midplanes_per_rack;
  t.nodecards_per_midplane_ = nodecards_per_midplane;
  t.nodes_per_nodecard_ = nodes_per_nodecard;
  t.total_nodes_ =
      racks * midplanes_per_rack * nodecards_per_midplane * nodes_per_nodecard;
  t.naming_ = NamingStyle::BlueGene;
  return t;
}

Topology Topology::cluster(std::int32_t nodes, std::int32_t nodes_per_rack,
                           std::string node_prefix) {
  if (nodes <= 0 || nodes_per_rack <= 0)
    throw std::invalid_argument("Topology::cluster: non-positive dimension");
  Topology t;
  // Model a flat cluster as racks of single-node "cards": node card and
  // midplane collapse to the node itself; only Node/Rack/System scopes are
  // physically meaningful and classify_spread treats it accordingly.
  t.racks_ = (nodes + nodes_per_rack - 1) / nodes_per_rack;
  t.midplanes_per_rack_ = 1;
  t.nodecards_per_midplane_ = nodes_per_rack;
  t.nodes_per_nodecard_ = 1;
  t.total_nodes_ = nodes;
  t.naming_ = NamingStyle::Cluster;
  t.node_prefix_ = std::move(node_prefix);
  return t;
}

Location Topology::location_of(std::int32_t node_id) const {
  if (node_id < 0 || node_id >= total_nodes_)
    throw std::out_of_range("Topology::location_of: bad node id");
  Location loc;
  const std::int32_t per_nc = nodes_per_nodecard_;
  const std::int32_t per_mp = per_nc * nodecards_per_midplane_;
  const std::int32_t per_rack = per_mp * midplanes_per_rack_;
  loc.rack = node_id / per_rack;
  loc.midplane = (node_id % per_rack) / per_mp;
  loc.nodecard = (node_id % per_mp) / per_nc;
  loc.node = node_id % per_nc;
  return loc;
}

std::int32_t Topology::node_id(const Location& loc) const {
  if (loc.rack < 0 || loc.midplane < 0 || loc.nodecard < 0 || loc.node < 0)
    throw std::invalid_argument("Topology::node_id: not a node-level location");
  const std::int32_t per_nc = nodes_per_nodecard_;
  const std::int32_t per_mp = per_nc * nodecards_per_midplane_;
  const std::int32_t per_rack = per_mp * midplanes_per_rack_;
  const std::int32_t id = loc.rack * per_rack + loc.midplane * per_mp +
                          loc.nodecard * per_nc + loc.node;
  if (id < 0 || id >= total_nodes_)
    throw std::out_of_range("Topology::node_id: location outside machine");
  return id;
}

std::string Topology::code(std::int32_t node_id) const {
  return code(location_of(node_id));
}

std::string Topology::code(const Location& loc) const {
  char buf[64];
  if (naming_ == NamingStyle::Cluster) {
    if (loc.rack >= 0 && loc.nodecard >= 0) {
      const std::int32_t flat =
          loc.rack * nodecards_per_midplane_ + loc.nodecard;
      std::snprintf(buf, sizeof buf, "%s%04d", node_prefix_.c_str(), flat);
    } else if (loc.rack >= 0) {
      std::snprintf(buf, sizeof buf, "%s-rack%02d", node_prefix_.c_str(),
                    loc.rack);
    } else {
      std::snprintf(buf, sizeof buf, "%s-system", node_prefix_.c_str());
    }
    return buf;
  }
  // Blue Gene style, truncated at the first unset level.
  if (loc.rack < 0) return "SYSTEM";
  if (loc.midplane < 0) {
    std::snprintf(buf, sizeof buf, "R%02d", loc.rack);
  } else if (loc.nodecard < 0) {
    std::snprintf(buf, sizeof buf, "R%02d-M%d", loc.rack, loc.midplane);
  } else if (loc.node < 0) {
    std::snprintf(buf, sizeof buf, "R%02d-M%d-N%02d", loc.rack, loc.midplane,
                  loc.nodecard);
  } else {
    std::snprintf(buf, sizeof buf, "R%02d-M%d-N%02d-C:J%02d", loc.rack,
                  loc.midplane, loc.nodecard, loc.node);
  }
  return buf;
}

Scope Topology::common_scope(std::int32_t a, std::int32_t b) const {
  const Location la = location_of(a), lb = location_of(b);
  if (la.rack != lb.rack) return Scope::System;
  if (!is_hierarchical()) return a == b ? Scope::Node : Scope::Rack;
  if (la.midplane != lb.midplane) return Scope::Rack;
  if (la.nodecard != lb.nodecard) return Scope::Midplane;
  if (la.node != lb.node) return Scope::NodeCard;
  return Scope::Node;
}

Scope Topology::classify_spread(std::span<const std::int32_t> nodes) const {
  if (nodes.empty()) return Scope::None;
  Scope widest = Scope::Node;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const Scope s = common_scope(nodes[0], nodes[i]);
    if (static_cast<int>(s) > static_cast<int>(widest)) widest = s;
  }
  return widest;
}

std::vector<std::int32_t> Topology::nodes_in_scope(std::int32_t node_id,
                                                   Scope s) const {
  const std::int32_t per_nc = nodes_per_nodecard_;
  const std::int32_t per_mp = per_nc * nodecards_per_midplane_;
  const std::int32_t per_rack = per_mp * midplanes_per_rack_;
  std::int32_t lo = node_id, count = 1;
  switch (s) {
    case Scope::None:
    case Scope::Node:
      break;
    case Scope::NodeCard:
      lo = node_id / per_nc * per_nc;
      count = per_nc;
      break;
    case Scope::Midplane:
      lo = node_id / per_mp * per_mp;
      count = per_mp;
      break;
    case Scope::Rack:
      lo = node_id / per_rack * per_rack;
      count = per_rack;
      break;
    case Scope::System:
      lo = 0;
      count = total_nodes_;
      break;
  }
  count = std::min(count, total_nodes_ - lo);
  std::vector<std::int32_t> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::int32_t i = 0; i < count; ++i) out.push_back(lo + i);
  return out;
}

std::int32_t Topology::scope_size(Scope s) const {
  switch (s) {
    case Scope::None:
    case Scope::Node:
      return 1;
    case Scope::NodeCard:
      return nodes_per_nodecard_;
    case Scope::Midplane:
      return nodes_per_nodecard_ * nodecards_per_midplane_;
    case Scope::Rack:
      return nodes_per_nodecard_ * nodecards_per_midplane_ *
             midplanes_per_rack_;
    case Scope::System:
      return total_nodes_;
  }
  return 1;
}

}  // namespace elsa::topo
