// Machine model: the component hierarchy of a large HPC system.
//
// The paper's location-correlation module (§III.D) reasons about how fault
// syndromes spread through the physical hierarchy (Blue Gene: nodes live on
// node cards, node cards in midplanes, midplanes in racks; Fig 7 breaks
// propagation down exactly along those levels). This module provides that
// hierarchy, Blue Gene-style location codes such as "R00-M0-N03-C:J05-U01",
// and scope queries ("do these two nodes share a midplane?", "what is the
// tightest enclosing scope of this node set?").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace elsa::topo {

/// Hierarchy levels, ordered from tightest to widest. `None` means "no
/// spread at all" (single node) in classification results.
enum class Scope : std::uint8_t {
  None = 0,
  Node,
  NodeCard,
  Midplane,
  Rack,
  System,
};

const char* to_string(Scope s);

/// Position of a component in the hierarchy. Node-level locations have all
/// four indices set; coarser components leave finer fields at -1.
struct Location {
  std::int32_t rack = -1;
  std::int32_t midplane = -1;
  std::int32_t nodecard = -1;
  std::int32_t node = -1;

  bool operator==(const Location&) const = default;
};

/// Naming style for rendered location codes.
enum class NamingStyle : std::uint8_t {
  BlueGene,  ///< R00-M0-N03-C:J05
  Cluster,   ///< tg-c0107 (flat node names, NCSA Mercury style)
};

/// Immutable machine description. Both evaluation systems are instances:
///   Topology::bluegene()          — 64 racks x 2 midplanes x 16 node cards
///                                   x 32 compute nodes (BG/L-like)
///   Topology::cluster(891)        — Mercury-like flat cluster (racks of 32
///                                   for cabling locality, no node cards)
class Topology {
 public:
  static Topology bluegene(std::int32_t racks = 64,
                           std::int32_t midplanes_per_rack = 2,
                           std::int32_t nodecards_per_midplane = 16,
                           std::int32_t nodes_per_nodecard = 32);

  static Topology cluster(std::int32_t nodes, std::int32_t nodes_per_rack = 32,
                          std::string node_prefix = "tg-c");

  std::int32_t total_nodes() const { return total_nodes_; }
  std::int32_t racks() const { return racks_; }
  std::int32_t midplanes_per_rack() const { return midplanes_per_rack_; }
  std::int32_t nodecards_per_midplane() const { return nodecards_per_midplane_; }
  std::int32_t nodes_per_nodecard() const { return nodes_per_nodecard_; }
  NamingStyle naming() const { return naming_; }
  /// True when the machine exposes node-card/midplane structure (Blue Gene).
  bool is_hierarchical() const { return naming_ == NamingStyle::BlueGene; }

  /// Full node-level location of a node id in [0, total_nodes()).
  Location location_of(std::int32_t node_id) const;

  /// Inverse of location_of for node-level locations.
  std::int32_t node_id(const Location& loc) const;

  /// Rendered code for a node-level location, e.g. "R03-M1-N07-C:J12" or
  /// "tg-c0107" depending on the naming style.
  std::string code(std::int32_t node_id) const;

  /// Rendered code for an arbitrary-granularity location (node card codes
  /// like "R00-M0-N03", midplane codes like "R00-M0", ...).
  std::string code(const Location& loc) const;

  /// Tightest scope containing both nodes (Node if identical).
  Scope common_scope(std::int32_t a, std::int32_t b) const;

  /// Tightest scope containing every node in the set. Empty set -> None;
  /// singleton -> Node. For non-hierarchical machines any multi-node set
  /// inside one rack classifies as Rack, otherwise System.
  Scope classify_spread(std::span<const std::int32_t> nodes) const;

  /// All node ids sharing the given scope with `node_id` (includes itself).
  /// Scope::None and Scope::Node both return just {node_id}.
  std::vector<std::int32_t> nodes_in_scope(std::int32_t node_id, Scope s) const;

  /// Number of nodes a given scope spans around any node.
  std::int32_t scope_size(Scope s) const;

 private:
  Topology() = default;

  std::int32_t racks_ = 0;
  std::int32_t midplanes_per_rack_ = 0;
  std::int32_t nodecards_per_midplane_ = 0;
  std::int32_t nodes_per_nodecard_ = 0;
  std::int32_t total_nodes_ = 0;
  NamingStyle naming_ = NamingStyle::BlueGene;
  std::string node_prefix_;
};

}  // namespace elsa::topo
