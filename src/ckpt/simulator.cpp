#include "ckpt/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace elsa::ckpt {

SimResult simulate_checkpointing(const SimConfig& cfg) {
  const CkptParams& p = cfg.params;
  util::Rng rng(cfg.seed);
  SimResult r;

  // Interval optimised for the failures that remain unpredicted (eq. 4).
  double T = cfg.interval;
  if (T <= 0.0) {
    const double effective_mttf =
        cfg.recall < 1.0 ? p.mttf / (1.0 - cfg.recall) : 1.0e12;
    T = std::sqrt(2.0 * p.C * effective_mttf);
  }

  // False alarms arrive as a Poisson process with the rate eq. 7 implies.
  const double fa_rate =
      cfg.precision < 1.0 && cfg.recall > 0.0
          ? cfg.recall * (1.0 - cfg.precision) / (cfg.precision * p.mttf)
          : 0.0;

  double saved_work = 0.0;       // work protected by the last checkpoint
  double work_since_ckpt = 0.0;  // work accumulated since then
  double next_failure = rng.exponential(p.mttf);
  double next_false_alarm =
      fa_rate > 0.0 ? rng.exponential(1.0 / fa_rate) : 1.0e18;
  double until_ckpt = T;

  while (saved_work + work_since_ckpt < cfg.target_work) {
    // Next interruption of useful compute.
    const double step =
        std::min({until_ckpt, next_failure, next_false_alarm});
    r.wall_time += step;
    work_since_ckpt += step;
    until_ckpt -= step;
    next_failure -= step;
    next_false_alarm -= step;

    if (next_failure <= 0.0) {
      ++r.failures;
      if (rng.bernoulli(cfg.recall)) {
        // Predicted: proactive checkpoint lands just before the failure.
        ++r.predicted_failures;
        ++r.checkpoints;
        r.wall_time += p.C;
        saved_work += work_since_ckpt;
        work_since_ckpt = 0.0;
      } else {
        work_since_ckpt = 0.0;  // rolled back
      }
      r.wall_time += p.R + p.D;
      next_failure = rng.exponential(p.mttf);
      until_ckpt = T;
      continue;
    }
    if (next_false_alarm <= 0.0) {
      ++r.false_alarms;
      ++r.checkpoints;
      r.wall_time += p.C;
      saved_work += work_since_ckpt;
      work_since_ckpt = 0.0;
      next_false_alarm = rng.exponential(1.0 / fa_rate);
      until_ckpt = T;
      continue;
    }
    // Periodic checkpoint.
    ++r.checkpoints;
    r.wall_time += p.C;
    saved_work += work_since_ckpt;
    work_since_ckpt = 0.0;
    until_ckpt = T;
  }
  r.useful_work = saved_work + work_since_ckpt;
  return r;
}

}  // namespace elsa::ckpt
