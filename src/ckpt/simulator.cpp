#include "ckpt/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace elsa::ckpt {

namespace {

void check_params(const CkptParams& p, const char* who) {
  if (!(p.C > 0.0) || !(p.R >= 0.0) || !(p.D >= 0.0) ||
      !std::isfinite(p.C) || !std::isfinite(p.R) || !std::isfinite(p.D))
    throw std::invalid_argument(std::string(who) +
                                ": CkptParams C/R/D malformed");
}

void check_sim_config(const SimConfig& cfg) {
  check_params(cfg.params, "simulate_checkpointing");
  if (!(cfg.params.mttf > 0.0) || !std::isfinite(cfg.params.mttf))
    throw std::invalid_argument("simulate_checkpointing: mttf must be > 0");
  if (!(cfg.precision > 0.0) || !(cfg.precision <= 1.0))
    throw std::invalid_argument(
        "simulate_checkpointing: precision outside (0,1]");
  if (!(cfg.recall >= 0.0) || !(cfg.recall <= 1.0))
    throw std::invalid_argument(
        "simulate_checkpointing: recall outside [0,1]");
  if (!(cfg.target_work > 0.0) || !std::isfinite(cfg.target_work))
    throw std::invalid_argument(
        "simulate_checkpointing: target_work must be > 0");
  // interval == 0 selects the recall-adjusted optimum; anything else must
  // be a positive, finite interval (a NaN here used to poison every
  // min() in the event loop and spin the simulation forever).
  if (!(cfg.interval >= 0.0) || !std::isfinite(cfg.interval))
    throw std::invalid_argument(
        "simulate_checkpointing: interval must be 0 (optimum) or > 0");
}

}  // namespace

SimResult simulate_checkpointing(const SimConfig& cfg) {
  check_sim_config(cfg);
  const CkptParams& p = cfg.params;
  util::Rng rng(cfg.seed);
  SimResult r;

  // Interval optimised for the failures that remain unpredicted (eq. 4).
  double T = cfg.interval;
  if (T <= 0.0) {
    const double effective_mttf =
        cfg.recall < 1.0 ? p.mttf / (1.0 - cfg.recall) : 1.0e12;
    T = std::sqrt(2.0 * p.C * effective_mttf);
  }

  // False alarms arrive as a Poisson process with the rate eq. 7 implies.
  const double fa_rate =
      cfg.precision < 1.0 && cfg.recall > 0.0
          ? cfg.recall * (1.0 - cfg.precision) / (cfg.precision * p.mttf)
          : 0.0;

  double saved_work = 0.0;       // work protected by the last checkpoint
  double work_since_ckpt = 0.0;  // work accumulated since then
  double next_failure = rng.exponential(p.mttf);
  double next_false_alarm =
      fa_rate > 0.0 ? rng.exponential(1.0 / fa_rate) : 1.0e18;
  double until_ckpt = T;

  while (saved_work + work_since_ckpt < cfg.target_work) {
    // Next interruption of useful compute.
    const double step =
        std::min({until_ckpt, next_failure, next_false_alarm});
    r.wall_time += step;
    work_since_ckpt += step;
    until_ckpt -= step;
    next_failure -= step;
    next_false_alarm -= step;

    if (next_failure <= 0.0) {
      ++r.failures;
      if (rng.bernoulli(cfg.recall)) {
        // Predicted: proactive checkpoint lands just before the failure.
        ++r.predicted_failures;
        ++r.checkpoints;
        r.wall_time += p.C;
        saved_work += work_since_ckpt;
        work_since_ckpt = 0.0;
      } else {
        work_since_ckpt = 0.0;  // rolled back
      }
      r.wall_time += p.R + p.D;
      next_failure = rng.exponential(p.mttf);
      until_ckpt = T;
      continue;
    }
    if (next_false_alarm <= 0.0) {
      ++r.false_alarms;
      ++r.checkpoints;
      r.wall_time += p.C;
      saved_work += work_since_ckpt;
      work_since_ckpt = 0.0;
      next_false_alarm = rng.exponential(1.0 / fa_rate);
      until_ckpt = T;
      continue;
    }
    // Periodic checkpoint.
    ++r.checkpoints;
    r.wall_time += p.C;
    saved_work += work_since_ckpt;
    work_since_ckpt = 0.0;
    until_ckpt = T;
  }
  r.useful_work = saved_work + work_since_ckpt;
  return r;
}

namespace {

void check_ascending(const std::vector<double>& v, const char* what) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i]))
      throw std::invalid_argument(std::string("simulate_schedule: ") + what +
                                  " contains a non-finite time");
    if (i > 0 && v[i] < v[i - 1])
      throw std::invalid_argument(std::string("simulate_schedule: ") + what +
                                  " not ascending");
  }
}

void check_schedule_config(const ScheduleSimConfig& cfg) {
  check_params(cfg.params, "simulate_schedule");
  if (!std::isfinite(cfg.t_begin) || !std::isfinite(cfg.t_end) ||
      !(cfg.t_end > cfg.t_begin))
    throw std::invalid_argument("simulate_schedule: t_end must be > t_begin");
  if (!(cfg.interval > 0.0) || !std::isfinite(cfg.interval))
    throw std::invalid_argument(
        "simulate_schedule: initial interval must be > 0");
  for (std::size_t i = 0; i < cfg.changes.size(); ++i) {
    const IntervalChange& c = cfg.changes[i];
    if (!std::isfinite(c.time) || !(c.interval > 0.0) ||
        !std::isfinite(c.interval))
      throw std::invalid_argument(
          "simulate_schedule: interval change malformed");
    if (i > 0 && c.time < cfg.changes[i - 1].time)
      throw std::invalid_argument(
          "simulate_schedule: interval changes not ascending");
  }
  check_ascending(cfg.proactive, "proactive");
  check_ascending(cfg.failures, "failures");
}

}  // namespace

ScheduleSimResult simulate_schedule(const ScheduleSimConfig& cfg) {
  check_schedule_config(cfg);
  const CkptParams& p = cfg.params;
  ScheduleSimResult r;

  // The replay walks absolute time. Compute accrues into `work` (volatile —
  // a failure rolls it back); a checkpoint commits it. Overhead windows
  // (C at a checkpoint, R+D after a failure) advance `t` without accruing;
  // events whose timestamp lands inside an overhead window take effect as
  // soon as the window closes (effective time max(t, ev.time)), which is
  // also what re-anchors the periodic tick stream past swallowed ticks.
  double t = cfg.t_begin;
  double T = cfg.interval;
  double anchor = cfg.t_begin;  ///< last checkpoint / restart / re-anchor
  double work = 0.0;            ///< compute since the last checkpoint
  double useful = 0.0;          ///< committed (checkpointed) compute

  const auto compute_until = [&](double until) {
    if (until > t) {
      work += until - t;
      t = until;
    }
  };
  const auto do_checkpoint = [&] {
    useful += work;
    work = 0.0;
    r.ckpt_overhead += p.C;
    t += p.C;
    anchor = t;
    ++r.checkpoints;
  };

  enum : std::uint8_t { kChange = 0, kProactive = 1, kFailure = 2, kNone = 3 };
  std::size_t ci = 0, pi = 0, fi = 0;
  // Events before the window start are outside the replay; skip them.
  while (ci < cfg.changes.size() && cfg.changes[ci].time < cfg.t_begin) ++ci;
  while (pi < cfg.proactive.size() && cfg.proactive[pi] < cfg.t_begin) ++pi;
  while (fi < cfg.failures.size() && cfg.failures[fi] < cfg.t_begin) ++fi;

  for (;;) {
    // Earliest pending event inside the window; ties break change <
    // proactive < failure so a directive coinciding with its failure
    // checkpoints first (that is the point of the directive).
    int kind = kNone;
    double ev_time = 0.0;
    if (fi < cfg.failures.size() && cfg.failures[fi] < cfg.t_end) {
      kind = kFailure;
      ev_time = cfg.failures[fi];
    }
    if (pi < cfg.proactive.size() && cfg.proactive[pi] < cfg.t_end &&
        (kind == kNone || cfg.proactive[pi] <= ev_time)) {
      kind = kProactive;
      ev_time = cfg.proactive[pi];
    }
    if (ci < cfg.changes.size() && cfg.changes[ci].time < cfg.t_end &&
        (kind == kNone || cfg.changes[ci].time <= ev_time)) {
      kind = kChange;
      ev_time = cfg.changes[ci].time;
    }

    const double eff = kind == kNone ? cfg.t_end : std::max(t, ev_time);
    // Periodic ticks strictly before the next event fire first.
    while (anchor + T < eff && anchor + T < cfg.t_end) {
      compute_until(anchor + T);
      do_checkpoint();
    }
    if (kind == kNone) break;

    switch (kind) {
      case kChange:
        compute_until(eff);
        T = cfg.changes[ci++].interval;
        anchor = t;  // the new cadence starts now
        break;
      case kProactive:
        compute_until(eff);
        do_checkpoint();
        ++r.proactive_taken;
        ++pi;
        break;
      case kFailure:
        compute_until(eff);
        r.lost_work += work;
        work = 0.0;
        r.restart_overhead += p.R + p.D;
        t += p.R + p.D;
        anchor = t;
        ++r.failures;
        ++fi;
        break;
      default:
        break;
    }
  }

  // Trailing compute commits: the run reached t_end without losing it.
  compute_until(cfg.t_end);
  useful += work;

  r.useful_work = useful;
  // Overhead from a late failure/checkpoint can spill past t_end; the
  // realised span honestly includes it.
  r.wall_time = std::max(t, cfg.t_end) - cfg.t_begin;
  return r;
}

}  // namespace elsa::ckpt
