#include "ckpt/waste_model.hpp"

#include <cmath>
#include <stdexcept>

namespace elsa::ckpt {

namespace {
void check(const CkptParams& p) {
  if (p.C <= 0 || p.R < 0 || p.D < 0 || p.mttf <= 0)
    throw std::invalid_argument("CkptParams: non-positive parameter");
}
}  // namespace

double young_interval(const CkptParams& p) {
  check(p);
  return std::sqrt(2.0 * p.C * p.mttf);
}

double waste_periodic(const CkptParams& p, double T) {
  check(p);
  if (T <= 0) throw std::invalid_argument("waste_periodic: T <= 0");
  return p.C / T + T / (2.0 * p.mttf) + (p.R + p.D) / p.mttf;
}

double waste_no_prediction(const CkptParams& p) {
  return waste_periodic(p, young_interval(p));
}

double waste_with_recall(const CkptParams& p, double recall) {
  check(p);
  if (recall < 0.0 || recall > 1.0)
    throw std::invalid_argument("waste_with_recall: recall outside [0,1]");
  // eq. 5/6: sqrt(2C(1-N)/MTTF) for the surviving exponential failures,
  // (R+D)/MTTF because every failure still restarts, CN/MTTF for the
  // proactive checkpoints of predicted failures.
  return std::sqrt(2.0 * p.C * (1.0 - recall) / p.mttf) +
         (p.R + p.D) / p.mttf + p.C * recall / p.mttf;
}

double waste_with_prediction(const CkptParams& p, double recall,
                             double precision) {
  if (precision <= 0.0 || precision > 1.0)
    throw std::invalid_argument(
        "waste_with_prediction: precision outside (0,1]");
  // eq. 7 adds the false-positive checkpoints: predicted events arrive every
  // MTTF/N; they are a fraction P of all alarms, so false alarms arrive
  // every P*MTTF/((1-P)*N) and each costs C.
  return waste_with_recall(p, recall) +
         p.C * recall * (1.0 - precision) / (precision * p.mttf);
}

double waste_gain(const CkptParams& p, double recall, double precision) {
  const double w0 = waste_no_prediction(p);
  const double w1 = waste_with_prediction(p, recall, precision);
  return (w0 - w1) / w0;
}

}  // namespace elsa::ckpt
