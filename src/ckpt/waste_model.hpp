// Analytical checkpoint-waste model (paper §VI.B, equations 1–7): how much
// compute a periodic checkpoint-restart scheme wastes, and how much a
// predictor with recall N and precision P recovers. Reproduces Table IV.
//
// All times are in the same unit (minutes in the paper's examples); the
// model is unit-agnostic.
#pragma once

namespace elsa::ckpt {

struct CkptParams {
  double C = 1.0;     ///< time to take one checkpoint
  double R = 5.0;     ///< time to load a checkpoint back
  double D = 1.0;     ///< downtime / restart provisioning
  double mttf = 1440; ///< system mean time to failure
};

/// Young's optimal checkpoint interval  T_opt = sqrt(2 C MTTF)   (eq. 2).
double young_interval(const CkptParams& p);

/// Waste fraction of periodic checkpointing at interval T        (eq. 1):
///   W = C/T + T/(2 MTTF) + (R+D)/MTTF.
double waste_periodic(const CkptParams& p, double T);

/// Minimum waste without prediction (eq. 1 at Young's interval).
double waste_no_prediction(const CkptParams& p);

/// Minimum waste with a predictor of recall N and perfect precision
/// (eq. 6): unpredicted failures keep exponential behaviour with
/// MTTF' = MTTF/(1-N); every predicted failure costs one proactive
/// checkpoint.
double waste_with_recall(const CkptParams& p, double recall);

/// Full model with precision P (eq. 7): false positives add a proactive
/// checkpoint every P*MTTF/((1-P)*N).
double waste_with_prediction(const CkptParams& p, double recall,
                             double precision);

/// Relative improvement (Table IV "waste gain"):
///   (W_noPred - W_pred) / W_noPred.
double waste_gain(const CkptParams& p, double recall, double precision);

}  // namespace elsa::ckpt
