// Event-driven checkpoint-restart simulator: an independent check on the
// analytical waste model (eqs 1–7). It plays out an application's life —
// periodic checkpoints, exponential failures, a predictor that flags a
// fraction `recall` of failures just in time (triggering one proactive
// checkpoint) and raises false alarms per `precision` — and measures the
// realised waste. Table IV's bench prints analytical and simulated waste
// side by side.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/waste_model.hpp"

namespace elsa::ckpt {

struct SimConfig {
  CkptParams params;
  double recall = 0.0;
  double precision = 1.0;
  /// Units of useful work the application must complete (same unit as
  /// CkptParams times). Larger -> tighter estimate.
  double target_work = 1.0e6;
  std::uint64_t seed = 1;
  /// Checkpoint interval; 0 = use the model's recall-adjusted optimum.
  double interval = 0.0;
};

struct SimResult {
  double wall_time = 0.0;
  double useful_work = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t predicted_failures = 0;
  std::uint64_t false_alarms = 0;
  std::uint64_t checkpoints = 0;

  double waste() const {
    return wall_time > 0.0 ? (wall_time - useful_work) / wall_time : 0.0;
  }
};

/// Plays out SimConfig; throws std::invalid_argument on a malformed config
/// (precision outside (0,1], recall outside [0,1], non-positive target
/// work, negative or non-finite interval, bad CkptParams) instead of
/// silently simulating with NaN or a degenerate interval.
SimResult simulate_checkpointing(const SimConfig& cfg);

// ---------------------------------------------------------------------------
// Schedule-driven replay (the advisor's realised-waste meter). Instead of
// drawing failures from an exponential process, this variant replays a
// *known* failure record against a concrete checkpoint schedule — the
// per-partition interval updates and proactive directives the advisor
// emitted online — and reports the waste that schedule would have realised.
// Fully deterministic: same schedule + same failures => same result.

/// One advisor interval change: from `time` on, checkpoint every
/// `interval` (same time unit as CkptParams, absolute timeline).
struct IntervalChange {
  double time = 0.0;
  double interval = 0.0;
};

struct ScheduleSimConfig {
  CkptParams params;  ///< C/R/D used; mttf ignored (failures are replayed)
  double t_begin = 0.0;
  double t_end = 0.0;
  /// Interval in force at t_begin (> 0).
  double interval = 0.0;
  /// Interval recomputations, ascending in time within [t_begin, t_end].
  std::vector<IntervalChange> changes;
  /// Proactive "checkpoint now" directive times, ascending.
  std::vector<double> proactive;
  /// Ground-truth failure times, ascending.
  std::vector<double> failures;
};

struct ScheduleSimResult {
  double wall_time = 0.0;     ///< t_end - t_begin (the machine's span)
  double useful_work = 0.0;   ///< committed work surviving to t_end
  double lost_work = 0.0;     ///< rolled back at failures
  double ckpt_overhead = 0.0; ///< time spent writing checkpoints
  double restart_overhead = 0.0;  ///< R+D paid at failures
  std::uint64_t checkpoints = 0;  ///< periodic + proactive
  std::uint64_t proactive_taken = 0;
  std::uint64_t failures = 0;

  double waste() const {
    return wall_time > 0.0 ? (wall_time - useful_work) / wall_time : 0.0;
  }
};

/// Replays `cfg.failures` against the schedule; throws
/// std::invalid_argument on malformed input (t_end <= t_begin,
/// non-positive or non-finite intervals, unsorted event lists).
ScheduleSimResult simulate_schedule(const ScheduleSimConfig& cfg);

}  // namespace elsa::ckpt
