// Event-driven checkpoint-restart simulator: an independent check on the
// analytical waste model (eqs 1–7). It plays out an application's life —
// periodic checkpoints, exponential failures, a predictor that flags a
// fraction `recall` of failures just in time (triggering one proactive
// checkpoint) and raises false alarms per `precision` — and measures the
// realised waste. Table IV's bench prints analytical and simulated waste
// side by side.
#pragma once

#include <cstdint>

#include "ckpt/waste_model.hpp"

namespace elsa::ckpt {

struct SimConfig {
  CkptParams params;
  double recall = 0.0;
  double precision = 1.0;
  /// Units of useful work the application must complete (same unit as
  /// CkptParams times). Larger -> tighter estimate.
  double target_work = 1.0e6;
  std::uint64_t seed = 1;
  /// Checkpoint interval; 0 = use the model's recall-adjusted optimum.
  double interval = 0.0;
};

struct SimResult {
  double wall_time = 0.0;
  double useful_work = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t predicted_failures = 0;
  std::uint64_t false_alarms = 0;
  std::uint64_t checkpoints = 0;

  double waste() const {
    return wall_time > 0.0 ? (wall_time - useful_work) / wall_time : 0.0;
  }
};

SimResult simulate_checkpointing(const SimConfig& cfg);

}  // namespace elsa::ckpt
