#include "advisor/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "serve/metrics.hpp"

namespace elsa::advisor {

namespace {

/// Total order on updates: trace time, then partition, then the values —
/// canonical regardless of pump-thread arrival interleaving across shards.
bool update_less(const IntervalUpdate& a, const IntervalUpdate& b) {
  if (a.time_ms != b.time_ms) return a.time_ms < b.time_ms;
  if (a.partition != b.partition) return a.partition < b.partition;
  if (a.est_mttf_min != b.est_mttf_min) return a.est_mttf_min < b.est_mttf_min;
  return a.interval_min < b.interval_min;
}

/// Total order on directives, same rationale.
bool directive_less(const Directive& a, const Directive& b) {
  if (a.issue_time_ms != b.issue_time_ms)
    return a.issue_time_ms < b.issue_time_ms;
  if (a.partition != b.partition) return a.partition < b.partition;
  if (a.chain_id != b.chain_id) return a.chain_id < b.chain_id;
  if (a.predicted_time_ms != b.predicted_time_ms)
    return a.predicted_time_ms < b.predicted_time_ms;
  return a.confidence < b.confidence;
}

void append_line(std::string& s, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  s += buf;
}

}  // namespace

std::string CheckpointSchedule::to_string() const {
  std::string s;
  append_line(s, "checkpoint schedule\n");
  append_line(s,
              "  initial interval %.4f min; events %llu, suppressed %llu, "
              "hits %llu, misses %llu\n",
              initial_interval_min, static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(suppressed),
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));
  for (const PartitionSchedule& p : partitions)
    append_line(s,
                "  partition %d: alarms %llu, episodes %llu, "
                "mttf %.4f min, interval %.4f min\n",
                p.partition, static_cast<unsigned long long>(p.alarms),
                static_cast<unsigned long long>(p.episodes), p.est_mttf_min,
                p.interval_min);
  for (const IntervalUpdate& u : updates)
    append_line(s, "  update t=%lld p=%d mttf=%.4f interval=%.4f\n",
                static_cast<long long>(u.time_ms), u.partition, u.est_mttf_min,
                u.interval_min);
  for (const Directive& d : directives)
    append_line(s,
                "  directive t=%lld p=%d chain=%llu pred=%lld conf=%.4f%s\n",
                static_cast<long long>(d.issue_time_ms), d.partition,
                static_cast<unsigned long long>(d.chain_id),
                static_cast<long long>(d.predicted_time_ms), d.confidence,
                d.scored ? (d.hit ? " HIT" : " MISS") : "");
  return s;
}

// elsa-deterministic: the advisor acceptance digest (79779a08db6fa192 in
// the replay gate) — any order- or clock-dependence here breaks CI.
std::uint64_t CheckpointSchedule::digest() const {
  const std::string s = to_string();
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV-1a 64 prime
  }
  return h;
}

namespace {

double clampd(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

double interval_for(const AdvisorConfig& cfg, double mttf_min) {
  return interval_for_cost(cfg, cfg.params.C, mttf_min);
}

}  // namespace

// Eq. 4: the optimum for the failures the directive pipeline will *not*
// catch (effective MTTF inflated by 1/(1-credited recall); see
// AdvisorConfig::interval_recall).
double interval_for_cost(const AdvisorConfig& cfg, double C,
                         double mttf_min) {
  const double r =
      cfg.interval_recall >= 0.0 ? cfg.interval_recall : cfg.recall;
  const double eff = r < 1.0 ? mttf_min / (1.0 - r) : 1.0e12;
  return clampd(std::sqrt(2.0 * C * eff), cfg.min_interval_min,
                cfg.max_interval_min);
}

CheckpointAdvisor::CheckpointAdvisor(AdvisorConfig cfg,
                                     std::int32_t nodes_per_midplane,
                                     serve::ServeMetrics* metrics)
    : cfg_(cfg),
      nodes_per_midplane_(nodes_per_midplane > 0 ? nodes_per_midplane : 1),
      metrics_(metrics),
      initial_interval_min_(interval_for(cfg, cfg.params.mttf)) {}

std::int32_t CheckpointAdvisor::partition_of(std::int32_t node_id) const {
  if (node_id < 0) return -1;  // reserved system partition
  return node_id / nodes_per_midplane_;
}

double CheckpointAdvisor::initial_interval_min() const {
  return initial_interval_min_;
}

CheckpointAdvisor::Partition& CheckpointAdvisor::slot(std::int32_t partition) {
  // Slot 0 is the system partition (-1); midplane p lives at p + 1.
  const auto idx = static_cast<std::size_t>(partition + 1);
  if (parts_.size() <= idx) parts_.resize(idx + 1);
  return parts_[idx];
}

// elsa-deterministic: schedule state must depend only on the prediction
// stream — the replay digest compares runs across shard counts.
void CheckpointAdvisor::on_prediction(const core::Prediction& p) {
  const std::int32_t part =
      p.nodes.empty() ? -1 : partition_of(p.nodes.front());
  const std::int64_t t = p.issue_time_ms;

  util::MutexLock lk(mu_);
  ++events_;
  if (metrics_) metrics_->on_advisor_event();
  Partition& s = slot(part);
  ++s.alarms;

  // Failure-rate estimate from the inter-alarm gap (see file comment in
  // advisor.hpp). Non-positive gaps (injected clock skew, clamped
  // out-of-order records) and intra-episode re-fires update the episode
  // edge but not the EWMA.
  if (!s.saw_alarm) {
    s.saw_alarm = true;
    s.last_alarm_ms = t;
  } else {
    const std::int64_t dt = t - s.last_alarm_ms;
    if (dt >= cfg_.episode_merge_ms) {
      const double gap_min = static_cast<double>(dt) / 60000.0;
      ++s.episodes;
      const double alpha =
          cfg_.gap_alpha > 0.0
              ? cfg_.gap_alpha
              : 1.0 / static_cast<double>(s.episodes);  // running mean
      s.gap_ewma_min = s.episodes == 1
                           ? gap_min
                           : alpha * gap_min + (1.0 - alpha) * s.gap_ewma_min;
    }
    if (dt > 0) s.last_alarm_ms = t;
  }

  // Publish a new interval only when the estimate moved enough
  // (hysteresis in the MTTF domain, so consumers can re-derive the
  // interval for any checkpoint cost from est_mttf alone).
  if (s.episodes > 0) {
    const double ratio = cfg_.episodes_per_failure > 0.0
                             ? cfg_.episodes_per_failure
                             : cfg_.recall / cfg_.precision;
    const double est =
        clampd(s.gap_ewma_min * ratio, cfg_.mttf_min, cfg_.mttf_max);
    const bool moved =
        s.published_mttf <= 0.0 ||
        std::fabs(est - s.published_mttf) >=
            cfg_.mttf_hysteresis * s.published_mttf;
    if (moved) {
      s.published_mttf = est;
      s.interval_min = interval_for(cfg_, est);
      updates_.push_back({t, part, est, s.interval_min});
      if (metrics_) metrics_->on_interval_update();
    }
  }

  // Proactive directive: confident, enough lead, and not inside the
  // partition's rate-limit window (skewed time counts as inside — a
  // directive "from the past" is a duplicate, not a new incident).
  if (p.confidence >= cfg_.directive_confidence &&
      p.lead_ms >= cfg_.min_lead_ms) {
    const bool limited =
        s.saw_directive && (t - s.last_directive_ms) < cfg_.directive_spacing_ms;
    if (limited) {
      ++suppressed_;
      if (metrics_) metrics_->on_directive_suppressed();
    } else {
      s.saw_directive = true;
      s.last_directive_ms = t;
      directives_.push_back(
          {t, p.predicted_time_ms, part, p.chain_id, p.confidence, false,
           false});
      if (metrics_) metrics_->on_directive();
    }
  }
}

void CheckpointAdvisor::score(
    const std::vector<simlog::GroundTruthFault>& faults, std::int64_t from_ms) {
  util::MutexLock lk(mu_);
  // Canonical directive order makes the greedy matching deterministic no
  // matter how pump-thread interleaving appended them.
  std::sort(directives_.begin(), directives_.end(), directive_less);

  struct Candidate {
    std::int64_t fail_ms;
    bool consumed = false;
  };
  // Same slot convention as the live state: system partition -1 at 0.
  std::vector<std::vector<Candidate>> per_part;
  for (const simlog::GroundTruthFault& f : faults) {
    if (f.fail_time_ms < from_ms) continue;
    const auto part =
        static_cast<std::size_t>(partition_of(f.initiating_node) + 1);
    if (per_part.size() <= part) per_part.resize(part + 1);
    per_part[part].push_back({f.fail_time_ms});
  }
  for (auto& v : per_part)
    std::sort(v.begin(), v.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.fail_ms < b.fail_ms;
              });

  std::uint64_t hits = 0, misses = 0;
  for (Directive& d : directives_) {
    // Directives issued before the scoring window (training replay) stay
    // unscored: they had no ground truth to be judged against.
    if (d.scored || d.issue_time_ms < from_ms) continue;
    d.scored = true;
    const std::int64_t lo = d.issue_time_ms;
    const std::int64_t hi =
        std::max(d.predicted_time_ms, d.issue_time_ms) + cfg_.hit_slack_ms;
    d.hit = false;
    const auto part = static_cast<std::size_t>(d.partition + 1);
    if (part < per_part.size()) {
      for (Candidate& c : per_part[part]) {
        if (c.consumed || c.fail_ms < lo) continue;
        if (c.fail_ms > hi) break;
        c.consumed = true;
        d.hit = true;
        break;
      }
    }
    d.hit ? ++hits : ++misses;
  }
  hits_ += hits;
  misses_ += misses;
  if (metrics_) {
    if (hits > 0) metrics_->on_predicted_hit(hits);
    if (misses > 0) metrics_->on_predicted_miss(misses);
  }
}

CheckpointSchedule CheckpointAdvisor::schedule() const {
  util::MutexLock lk(mu_);
  CheckpointSchedule out;
  out.initial_interval_min = initial_interval_min_;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    const Partition& s = parts_[i];
    if (s.alarms == 0) continue;
    PartitionSchedule ps;
    ps.partition = static_cast<std::int32_t>(i) - 1;
    ps.alarms = s.alarms;
    ps.episodes = s.episodes;
    ps.est_mttf_min = s.published_mttf;
    ps.interval_min = s.interval_min > 0.0 ? s.interval_min
                                           : initial_interval_min_;
    out.partitions.push_back(ps);
  }
  out.updates = updates_;
  std::sort(out.updates.begin(), out.updates.end(), update_less);
  out.directives = directives_;
  std::sort(out.directives.begin(), out.directives.end(), directive_less);
  out.events = events_;
  out.suppressed = suppressed_;
  out.hits = hits_;
  out.misses = misses_;
  return out;
}

}  // namespace elsa::advisor
