// AdvisorService: a PredictionService with the checkpoint advisor closed
// over it. It registers itself as the serve path's PredictionTap, hands
// each shard's predictions through a private wait-free SPSC ring (one per
// shard — the tap contract guarantees one producer per shard index), and
// a single pump thread feeds them to the CheckpointAdvisor. The predict
// hot path therefore never blocks on advisor work: a full ring drops the
// event and counts it (advisor_dropped in the metrics scrape; the
// deterministic-replay tests assert zero drops at the default capacity).
//
//   producers -> PredictionService -> shard workers
//                                        | publish(shard, p)   wait-free
//                                   SpscRing[shard]
//                                        | try_pop             pump thread
//                                  CheckpointAdvisor -> CheckpointSchedule
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "advisor/advisor.hpp"
#include "advisor/spsc.hpp"
#include "serve/service.hpp"

namespace elsa::advisor {

struct AdvisorServiceConfig {
  /// Base serving configuration; its `tap` field is overwritten with the
  /// advisor's own hook.
  serve::ServiceConfig serve;
  AdvisorConfig advisor;
  /// Per-shard SPSC capacity, in predictions. Generous by default: a drop
  /// costs schedule fidelity (and determinism), so the rings are sized for
  /// the full between-sweeps burst of a shard.
  std::size_t ring_capacity = 4096;
};

class AdvisorService final : public serve::PredictionTap {
 public:
  AdvisorService(const topo::Topology& topo, const core::OfflineModel& model,
                 AdvisorServiceConfig cfg = {});
  ~AdvisorService() override;

  AdvisorService(const AdvisorService&) = delete;
  AdvisorService& operator=(const AdvisorService&) = delete;

  /// The underlying serving endpoint (submit records here).
  serve::PredictionService& service() { return *service_; }
  const serve::PredictionService& service() const { return *service_; }

  CheckpointAdvisor& advisor() { return advisor_; }
  const CheckpointAdvisor& advisor() const { return advisor_; }

  /// PredictionTap: wait-free per-shard hand-off (shard workers call this).
  void publish(std::size_t shard, const core::Prediction& p) override;

  /// Finish the service (drain + merge), then drain the advisor: after
  /// this returns every published prediction has reached the advisor and
  /// the pump thread has exited. Idempotent.
  void finish(std::int64_t t_end_ms);

  /// Predictions lost to a full ring (0 in a healthy run).
  std::uint64_t dropped() const {
    // relaxed: standalone monotonic counter read for monitoring.
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Advisor snapshot (canonical order; see CheckpointSchedule).
  CheckpointSchedule schedule() const { return advisor_.schedule(); }

 private:
  void pump_loop();

  CheckpointAdvisor advisor_;
  std::vector<std::unique_ptr<SpscRing<core::Prediction>>> rings_;
  // elsa-atomic: monotonic-relaxed — tap overflow counter, summed only.
  std::atomic<std::uint64_t> dropped_{0};
  serve::ServeMetrics* metrics_ = nullptr;  ///< service_'s, cached for publish
  std::unique_ptr<serve::PredictionService> service_;
  // elsa-atomic: release-acquire-flag — finish()'s release store is the
  // pump thread's acquire-loaded exit signal.
  std::atomic<bool> stop_{false};
  std::thread pump_;
  bool finished_ = false;  ///< controlling thread only
};

}  // namespace elsa::advisor
