// CheckpointAdvisor: the prediction->action half of the paper's story.
// §VI.B prices prediction quality in checkpoint waste recovered; this
// module spends that quality online. It consumes the serve path's
// prediction stream (through AdvisorService's tap, or fed directly in
// tests), keeps a per-partition failure-rate estimate with exponential
// decay, and recomputes each partition's checkpoint interval with the
// recall-adjusted optimum from ckpt::waste_model — plus proactive
// "checkpoint now" directives on high-confidence, sufficient-lead alarms,
// rate-limited and hysteresis-damped so false-alarm bursts cannot thrash
// the schedule.
//
// Partitions are global midplane indices (the paper's §V locality unit and
// the sharding unit of serve::ShardedEngine). Every piece of mutable state
// is strictly per-partition, and per-partition prediction order is the
// engine's deterministic per-shard FIFO — so for location-confined chains
// the emitted CheckpointSchedule is byte-identical across runs and shard
// counts. Directive and update timestamps are *trace* time (prediction
// issue times), never wall time, which is the other half of determinism.
//
// Estimator math: alarms arrive at rate F·N/P (F failures/min, recall N,
// precision P — every predicted failure is an alarm, and precision says a
// fraction (1-P) of alarms are false), so the mean inter-alarm gap g gives
// MTTF ≈ g·N/P — and N/P is exactly the alarm-episodes-per-failure ratio,
// which a window with known ground truth measures directly and more
// faithfully than the offline prior (AdvisorConfig::episodes_per_failure).
// The gap EWMA decays old behaviour; alarms closer together
// than `episode_merge_ms` are one episode (chain re-fires about one
// incident) and extend it instead of cratering the estimate. The interval
// then follows eq. 4: T = sqrt(2·C·MTTF/(1-N)), clamped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/waste_model.hpp"
#include "elsa/online.hpp"
#include "simlog/record.hpp"
#include "util/thread_annotations.hpp"

namespace elsa::serve {
class ServeMetrics;
}

namespace elsa::advisor {

struct AdvisorConfig {
  /// Checkpoint cost model, minutes (paper Table IV units). `mttf` is the
  /// prior per-partition MTTF used before the first estimate exists.
  ckpt::CkptParams params{1.0, 5.0, 1.0, 1440.0};
  /// Offline-evaluated predictor quality feeding the MTTF estimator
  /// (alarm rate -> failure rate, see file comment).
  double precision = 0.92;
  double recall = 0.45;
  /// Calibrated alarm-episodes-per-failure ratio: when > 0 the estimator
  /// uses MTTF = gap * episodes_per_failure directly instead of deriving
  /// the ratio from the precision/recall prior. Measure it on a window
  /// with known ground truth (training episodes / training failures —
  /// `elsa advise` does this automatically); the prior is only as good as
  /// its assumption that the deployed model hits its offline numbers.
  double episodes_per_failure = -1.0;
  /// Recall credited by eq. 4 when stretching the interval. The eq. 4
  /// derivation assumes every predicted failure is proactively
  /// checkpointed, but the directive gate (confidence, lead, rate limit)
  /// covers fewer — crediting the predictor's full recall over-stretches
  /// the interval and the extra lost work cancels the proactive savings
  /// at small checkpoint costs. Negative = credit `recall` unchanged.
  double interval_recall = 0.25;
  /// EWMA weight of the newest inter-alarm gap; <= 0 selects the
  /// cumulative running mean (weight 1/n on the n-th episode), which has
  /// the lowest variance but never forgets — partitions whose failure
  /// rate drifts between windows stay mispriced forever. 0.1 is the
  /// replay-tuned balance: enough memory to average out gap noise, enough
  /// decay to track a drifting rate.
  double gap_alpha = 0.1;
  /// Relative MTTF move required before a new interval is published.
  double mttf_hysteresis = 0.20;
  /// Estimate clamps, minutes: a burst cannot drive the interval to zero,
  /// a quiet spell cannot push it to infinity.
  double mttf_min = 30.0;
  double mttf_max = 30.0 * 24.0 * 60.0;
  /// Published-interval clamps, minutes.
  double min_interval_min = 5.0;
  double max_interval_min = 24.0 * 60.0;
  /// Directive gate: confidence and promised lead an alarm needs.
  double directive_confidence = 0.5;
  std::int64_t min_lead_ms = 60 * 1000;
  /// Per-partition directive rate limit (trace time).
  std::int64_t directive_spacing_ms = 10 * 60 * 1000;
  /// Alarms closer than this are one episode: they extend it without
  /// entering the gap EWMA.
  std::int64_t episode_merge_ms = 5 * 60 * 1000;
  /// score(): a directive hits if a same-partition failure falls within
  /// [issue, max(predicted, issue) + hit_slack_ms].
  std::int64_t hit_slack_ms = 45 * 60 * 1000;
};

/// Eq. 4 interval for an arbitrary checkpoint cost `C` (minutes) at an
/// MTTF estimate, clamped to the config's bounds — the exact mapping the
/// advisor applies at its own cost (params.C). Consumers re-derive
/// intervals for other Table IV cost points from one est_mttf stream.
double interval_for_cost(const AdvisorConfig& cfg, double C, double mttf_min);

/// One proactive "checkpoint now" order.
struct Directive {
  std::int64_t issue_time_ms = 0;
  std::int64_t predicted_time_ms = 0;
  std::int32_t partition = 0;
  std::size_t chain_id = 0;
  double confidence = 0.0;
  bool scored = false;  ///< score() has judged it
  bool hit = false;     ///< a real failure fell inside the window
};

/// One published interval recomputation.
struct IntervalUpdate {
  std::int64_t time_ms = 0;
  std::int32_t partition = 0;
  double est_mttf_min = 0.0;   ///< the clamped estimate behind the interval
  double interval_min = 0.0;   ///< eq. 4 at est_mttf, clamped
};

/// Per-partition schedule state as of the snapshot.
struct PartitionSchedule {
  std::int32_t partition = 0;
  std::uint64_t alarms = 0;       ///< predictions consumed
  std::uint64_t episodes = 0;     ///< gap-EWMA samples accepted
  double est_mttf_min = 0.0;      ///< current estimate (0 = none yet)
  double interval_min = 0.0;      ///< interval currently in force
};

/// The advisor's full observable output — the determinism artifact. The
/// scrape in ServeMetrics carries the counters; this carries everything,
/// in a canonical order (to_string() is byte-stable given equal inputs).
struct CheckpointSchedule {
  double initial_interval_min = 0.0;  ///< in force before any update
  std::vector<PartitionSchedule> partitions;  ///< sorted by partition
  std::vector<IntervalUpdate> updates;        ///< sorted, total key
  std::vector<Directive> directives;          ///< sorted, total key
  std::uint64_t events = 0;      ///< predictions consumed
  std::uint64_t suppressed = 0;  ///< directives rate-limited away
  std::uint64_t hits = 0;        ///< scored directives that matched a fault
  std::uint64_t misses = 0;      ///< scored directives that did not

  /// Canonical multi-line rendering; byte-identical for equal schedules.
  std::string to_string() const;
  /// FNV-1a 64 over to_string(), the one-line reproducibility receipt.
  std::uint64_t digest() const;
};

class CheckpointAdvisor {
 public:
  /// `nodes_per_midplane` maps node ids to partitions exactly like
  /// serve::ShardedEngine maps them to shards (global midplane index; the
  /// system scope node -1 rides partition 0). Pass a ServeMetrics to
  /// mirror the counters into the serve scrape; may be null.
  CheckpointAdvisor(AdvisorConfig cfg, std::int32_t nodes_per_midplane,
                    serve::ServeMetrics* metrics = nullptr);

  CheckpointAdvisor(const CheckpointAdvisor&) = delete;
  CheckpointAdvisor& operator=(const CheckpointAdvisor&) = delete;

  /// Late metrics binding for owners whose ServeMetrics outlives but is
  /// constructed after the advisor (AdvisorService). Call before the first
  /// on_prediction; not synchronized.
  void set_metrics(serve::ServeMetrics* metrics) { metrics_ = metrics; }

  /// Partition a node id routes to: its global midplane index, or the
  /// reserved system partition -1 for the system scope sentinel. Keeping
  /// system-scope alarms out of midplane 0's estimator matters: they would
  /// otherwise crater its MTTF estimate and over-checkpoint one midplane.
  std::int32_t partition_of(std::int32_t node_id) const;

  /// Consume one prediction (AdvisorService's pump thread; tests call it
  /// directly). Thread-safe, but per-partition order is the caller's
  /// responsibility (the tap contract provides it).
  void on_prediction(const core::Prediction& p) ELSA_EXCLUDES(mu_);

  /// Judge every unscored directive against ground truth: a directive
  /// hits when a same-partition fault fails inside
  /// [issue, max(predicted, issue) + hit_slack]; each fault is consumed by
  /// at most one directive (greedy in canonical directive order).
  /// Faults before `from_ms` (the training window) are ignored.
  void score(const std::vector<simlog::GroundTruthFault>& faults,
             std::int64_t from_ms) ELSA_EXCLUDES(mu_);

  /// Interval in force before the first update, minutes (eq. 4 at the
  /// configured prior MTTF, clamped).
  double initial_interval_min() const;

  /// Snapshot in canonical order (see CheckpointSchedule).
  CheckpointSchedule schedule() const ELSA_EXCLUDES(mu_);

  const AdvisorConfig& config() const { return cfg_; }

 private:
  struct Partition {
    std::uint64_t alarms = 0;
    std::uint64_t episodes = 0;
    std::int64_t last_alarm_ms = 0;
    bool saw_alarm = false;
    std::int64_t last_directive_ms = 0;
    bool saw_directive = false;
    double gap_ewma_min = 0.0;     ///< valid once episodes > 0
    double published_mttf = 0.0;   ///< 0 = nothing published yet
    double interval_min = 0.0;     ///< current interval (0 = initial)
  };

  Partition& slot(std::int32_t partition) ELSA_REQUIRES(mu_);

  const AdvisorConfig cfg_;
  const std::int32_t nodes_per_midplane_;
  serve::ServeMetrics* metrics_ = nullptr;
  const double initial_interval_min_;

  // Rank kAdvisor (above the serve engine/ring/metrics ranks): nothing is
  // ever acquired while it is held — the metrics hooks called under it are
  // pure relaxed atomics.
  mutable util::Mutex mu_{"advisor::CheckpointAdvisor::mu_",
                          util::lockrank::kAdvisor};
  std::vector<Partition> parts_ ELSA_GUARDED_BY(mu_);  ///< index = partition
  std::vector<IntervalUpdate> updates_ ELSA_GUARDED_BY(mu_);
  std::vector<Directive> directives_ ELSA_GUARDED_BY(mu_);
  std::uint64_t events_ ELSA_GUARDED_BY(mu_) = 0;
  std::uint64_t suppressed_ ELSA_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ ELSA_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ ELSA_GUARDED_BY(mu_) = 0;
};

}  // namespace elsa::advisor
