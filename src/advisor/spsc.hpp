// Wait-free single-producer single-consumer ring, the hand-off between a
// shard worker publishing predictions (serve/tap.hpp) and the advisor's
// pump thread. One ring per shard: the tap contract guarantees at most one
// producer per shard index at any instant (worker, watchdog-restarted
// successor, or finishing thread — all sequenced by thread joins), and the
// advisor's single pump thread is the only consumer, so the classic
// two-index SPSC discipline applies with no locks and no CAS.
//
// try_push never blocks: a full ring refuses the element and the caller
// counts a drop (the tap contract's drop-and-count clause). Capacity is
// rounded up to a power of two so the index math is a mask.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/interleave.hpp"

namespace elsa::advisor {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False (and no effect) when the ring is full.
  // elsa-realtime: the shard worker publishes predictions through here.
  bool try_push(const T& v) {
    util::sched_point();
    // relaxed: tail_ is only written by this thread; no ordering needed to
    // read our own last store.
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    util::sched_point();
    // acquire: pairs with the consumer's head_ release so the slot we are
    // about to overwrite has really been read out.
    const std::size_t h = head_.load(std::memory_order_acquire);
    if (t - h > mask_) return false;  // full
    buf_[t & mask_] = v;
    util::sched_point();
    // release: publishes the slot write above to the consumer's
    // tail_ acquire.
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty.
  // elsa-realtime: the pump thread's drain side; two loads and a store.
  bool try_pop(T& out) {
    util::sched_point();
    // relaxed: head_ is only written by this thread.
    const std::size_t h = head_.load(std::memory_order_relaxed);
    util::sched_point();
    // acquire: pairs with the producer's tail_ release; makes the slot
    // contents visible before we read them.
    const std::size_t t = tail_.load(std::memory_order_acquire);
    if (h == t) return false;  // empty
    out = buf_[h & mask_];
    util::sched_point();
    // release: hands the consumed slot back to the producer's
    // head_ acquire.
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  // Separate cache lines so producer and consumer do not false-share.
  // elsa-atomic: spsc-seq — consumer-owned cursor: release store hands the
  // consumed slot back to the producer's acquire load.
  alignas(64) std::atomic<std::size_t> head_{0};  ///< next slot to pop
  // elsa-atomic: spsc-seq — producer-owned cursor: release store publishes
  // the slot write to the consumer's acquire load.
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< next slot to push
};

}  // namespace elsa::advisor
