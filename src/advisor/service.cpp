#include "advisor/service.hpp"

#include <algorithm>
#include <chrono>

namespace elsa::advisor {

AdvisorService::AdvisorService(const topo::Topology& topo,
                               const core::OfflineModel& model,
                               AdvisorServiceConfig cfg)
    : advisor_(cfg.advisor, std::max(1, topo.nodes_per_nodecard() *
                                            topo.nodecards_per_midplane())) {
  const std::size_t shards = cfg.serve.shards == 0 ? 1 : cfg.serve.shards;
  rings_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    rings_.push_back(
        std::make_unique<SpscRing<core::Prediction>>(cfg.ring_capacity));
  cfg.serve.tap = this;
  service_ =
      std::make_unique<serve::PredictionService>(topo, model, cfg.serve);
  // Bind the metrics before any prediction can flow: producers cannot
  // submit until this constructor returns, and the pump starts below.
  metrics_ = &service_->raw_metrics();
  advisor_.set_metrics(metrics_);
  pump_ = std::thread([this] { pump_loop(); });
}

AdvisorService::~AdvisorService() {
  // relaxed store would do for the flag alone; release pairs with the
  // pump's acquire so its final sweep sees everything published so far.
  stop_.store(true, std::memory_order_release);
  if (pump_.joinable()) pump_.join();
  // service_ tears down after this body; any prediction its draining
  // workers still publish lands in rings_ (destroyed after service_) and
  // is simply never pumped — the advisor was abandoned, not finished.
}

// elsa-realtime: runs on the shard worker inside the prediction hot loop —
// one SPSC try_push plus drop accounting, never a lock or an allocation.
void AdvisorService::publish(std::size_t shard, const core::Prediction& p) {
  if (shard < rings_.size() && rings_[shard]->try_push(p)) return;
  // relaxed: standalone monotonic counter; the pump never orders other
  // memory against it.
  dropped_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_) metrics_->on_advisor_drop();
}

void AdvisorService::pump_loop() {
  core::Prediction p;
  for (;;) {
    bool any = false;
    for (auto& r : rings_)
      while (r->try_pop(p)) {
        advisor_.on_prediction(p);
        any = true;
      }
    if (any) continue;
    // acquire: pairs with the release store in finish()/the destructor —
    // once observed, every publish that happened before the stop is
    // visible, so one final sweep below cannot miss a prediction.
    if (stop_.load(std::memory_order_acquire)) {
      for (auto& r : rings_)
        while (r->try_pop(p)) advisor_.on_prediction(p);
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void AdvisorService::finish(std::int64_t t_end_ms) {
  if (finished_) return;
  finished_ = true;
  // After service finish() returns, every prediction has been published
  // (drain_shard ran to completion on every shard) …
  service_->finish(t_end_ms);
  // … so stop-then-join guarantees the pump's final sweep consumes them
  // all: release pairs with the acquire load in pump_loop.
  stop_.store(true, std::memory_order_release);
  if (pump_.joinable()) pump_.join();
}

}  // namespace elsa::advisor
