// Trace generator: drives the machine model forward in time, emitting
// background traffic per the event catalog and injecting faults per the
// fault catalog, and returns a time-ordered log plus ground truth.
//
// Everything is seeded; the same (topology, catalogs, config) always yields
// byte-identical traces, which the tests rely on.
#pragma once

#include <cstdint>

#include "simlog/catalog.hpp"
#include "simlog/faults.hpp"
#include "simlog/record.hpp"
#include "topology/topology.hpp"

namespace elsa::simlog {

struct GeneratorConfig {
  double duration_days = 10.0;
  std::uint64_t seed = 42;
  /// Multiplier on all background emission rates (burst stress tests).
  double background_scale = 1.0;
  /// Multiplier on all fault arrival rates.
  double fault_rate_scale = 1.0;
  /// Render message text. Disable for signal-level experiments that don't
  /// exercise HELO — cuts generation time and memory substantially.
  bool render_text = true;
};

class TraceGenerator {
 public:
  TraceGenerator(topo::Topology topology, Catalog catalog,
                 FaultCatalog faults);

  Trace generate(const GeneratorConfig& cfg) const;

  const topo::Topology& topology() const { return topology_; }
  const Catalog& catalog() const { return catalog_; }
  const FaultCatalog& faults() const { return faults_; }

  /// Representative node ids of every emitter instance of a template —
  /// exposed for tests and for the dropout locator.
  std::vector<std::int32_t> emitters_of(const EventTemplate& t) const;

 private:
  topo::Topology topology_;
  Catalog catalog_;
  FaultCatalog faults_;
};

}  // namespace elsa::simlog
