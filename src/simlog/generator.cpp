#include "simlog/generator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "simlog/textgen.hpp"
#include "util/rng.hpp"

namespace elsa::simlog {

namespace {

constexpr double kMsPerS = 1000.0;

topo::Scope scope_of(EmitterScope e) {
  switch (e) {
    case EmitterScope::PerNode: return topo::Scope::Node;
    case EmitterScope::PerNodeCard: return topo::Scope::NodeCard;
    case EmitterScope::PerMidplane: return topo::Scope::Midplane;
    case EmitterScope::PerRack: return topo::Scope::Rack;
    case EmitterScope::Service: return topo::Scope::System;
  }
  return topo::Scope::System;
}

/// Key for the suppression index: (template id, emitter representative).
std::uint64_t supp_key(std::uint16_t tmpl, std::int32_t rep) {
  return (static_cast<std::uint64_t>(tmpl) << 32) ^
         static_cast<std::uint32_t>(rep + 1);
}

using IntervalMap =
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<std::int64_t, std::int64_t>>>;

bool suppressed(const IntervalMap& m, std::uint16_t tmpl, std::int32_t rep,
                std::int64_t t_ms) {
  const auto it = m.find(supp_key(tmpl, rep));
  if (it == m.end()) return false;
  const auto& ivs = it->second;
  // Intervals are sorted and merged; find the first interval ending after t.
  auto pos = std::upper_bound(
      ivs.begin(), ivs.end(), t_ms,
      [](std::int64_t t, const auto& iv) { return t < iv.second; });
  return pos != ivs.end() && pos->first <= t_ms;
}

void merge_intervals(IntervalMap& m) {
  for (auto& [key, ivs] : m) {
    std::sort(ivs.begin(), ivs.end());
    std::vector<std::pair<std::int64_t, std::int64_t>> merged;
    for (const auto& iv : ivs) {
      if (!merged.empty() && iv.first <= merged.back().second)
        merged.back().second = std::max(merged.back().second, iv.second);
      else
        merged.push_back(iv);
    }
    ivs = std::move(merged);
  }
}

}  // namespace

TraceGenerator::TraceGenerator(topo::Topology topology, Catalog catalog,
                               FaultCatalog faults)
    : topology_(std::move(topology)),
      catalog_(std::move(catalog)),
      faults_(std::move(faults)) {
  faults_.validate(catalog_);
}

std::vector<std::int32_t> TraceGenerator::emitters_of(
    const EventTemplate& t) const {
  std::vector<std::int32_t> reps;
  if (t.emitter == EmitterScope::Service) {
    reps.push_back(-1);
    return reps;
  }
  const topo::Scope s = scope_of(t.emitter);
  const std::int32_t stride = topology_.scope_size(s);
  for (std::int32_t n = 0; n < topology_.total_nodes(); n += stride)
    reps.push_back(n);
  return reps;
}

Trace TraceGenerator::generate(const GeneratorConfig& cfg) const {
  util::Rng root(cfg.seed);
  Trace trace;
  trace.topology = topology_;
  trace.t_begin_ms = 0;
  trace.t_end_ms =
      static_cast<std::int64_t>(cfg.duration_days * 86400.0 * kMsPerS);

  auto code_of = [&](std::int32_t node) {
    return node < 0 ? std::string("SYSTEM") : topology_.code(node);
  };
  auto emit = [&](std::int64_t t_ms, std::int32_t node, std::uint16_t tmpl,
                  std::uint32_t fault_id, util::Rng& rng) {
    if (t_ms < trace.t_begin_ms || t_ms >= trace.t_end_ms) return;
    LogRecord rec;
    rec.time_ms = t_ms;
    rec.node_id = node;
    rec.true_template = tmpl;
    rec.fault_id = fault_id;
    rec.severity = catalog_.at(tmpl).severity;
    if (cfg.render_text)
      rec.message = render_message(catalog_.at(tmpl).text, rng, code_of(node));
    trace.records.push_back(std::move(rec));
  };

  // ---- Phase 1: inject faults, collecting records + suppressions --------
  IntervalMap suppressions;
  std::uint32_t next_fault_id = 1;
  util::Rng fault_rng = root.fork();

  for (const auto& f : faults_.all()) {
    const double rate = f.rate_per_day * cfg.fault_rate_scale;
    if (rate <= 0.0) continue;
    const double mean_gap_ms = 86400.0 * kMsPerS / rate;
    // Longest step offset, to drop instances that would straddle the end.
    double max_off_s = 0.0;
    for (const auto& s : f.steps)
      max_off_s = std::max(max_off_s, s.offset_s + s.jitter_s +
                                          static_cast<double>(s.repeat_max) *
                                              s.repeat_spacing_s * 2.0);

    double t = fault_rng.exponential(mean_gap_ms);
    while (t < static_cast<double>(trace.t_end_ms)) {
      const std::int64_t start_ms = static_cast<std::int64_t>(t);
      t += fault_rng.exponential(mean_gap_ms);
      if (start_ms + static_cast<std::int64_t>(max_off_s * kMsPerS) >=
          trace.t_end_ms)
        continue;  // would be truncated; skip to keep ground truth clean

      util::Rng rng = fault_rng.fork();
      const std::int32_t init =
          static_cast<std::int32_t>(rng.below(
              static_cast<std::uint64_t>(topology_.total_nodes())));

      // Affected node set.
      std::vector<std::int32_t> affected;
      if (f.propagation == topo::Scope::Node) {
        affected.push_back(init);
      } else if (f.propagation == topo::Scope::System &&
                 f.global_fraction > 0.0) {
        for (std::int32_t n = 0; n < topology_.total_nodes(); ++n)
          if (n == init || rng.bernoulli(f.global_fraction))
            affected.push_back(n);
      } else {
        auto candidates = topology_.nodes_in_scope(init, f.propagation);
        std::int64_t want = rng.range(f.affected_min, f.affected_max);
        want = std::min<std::int64_t>(want,
                                      static_cast<std::int64_t>(candidates.size()));
        // Partial Fisher-Yates for a uniform sample; force the initiator in.
        for (std::size_t i = 0; i < candidates.size(); ++i)
          if (candidates[i] == init) {
            std::swap(candidates[0], candidates[i]);
            break;
          }
        for (std::int64_t i = 1; i < want; ++i) {
          const std::size_t j = static_cast<std::size_t>(
              rng.range(i, static_cast<std::int64_t>(candidates.size()) - 1));
          std::swap(candidates[static_cast<std::size_t>(i)], candidates[j]);
        }
        affected.assign(candidates.begin(), candidates.begin() + want);
      }

      const std::uint32_t fid = next_fault_id++;
      GroundTruthFault gt;
      gt.id = fid;
      gt.category = f.category;
      gt.start_time_ms = start_ms;
      gt.initiating_node = init;
      gt.affected_nodes = affected;
      gt.terminal_template = f.steps.at(f.terminal_step).tmpl;
      std::int64_t first_visible = trace.t_end_ms;
      std::int64_t terminal_time = -1;

      for (std::size_t si = 0; si < f.steps.size(); ++si) {
        const auto& step = f.steps[si];
        if (step.emit_prob < 1.0 && !rng.bernoulli(step.emit_prob) &&
            si != f.terminal_step)
          continue;
        std::vector<std::int32_t> where_nodes;
        switch (step.where) {
          case StepWhere::Initiator: where_nodes = {init}; break;
          case StepWhere::AllAffected: where_nodes = affected; break;
          case StepWhere::RandomAffected:
            where_nodes = {affected[rng.below(affected.size())]};
            break;
          case StepWhere::Service: where_nodes = {-1}; break;
        }
        const double base_off =
            step.offset_s + rng.uniform(-step.jitter_s, step.jitter_s);
        for (const std::int32_t node : where_nodes) {
          // Per-node skew so propagated steps do not collide exactly.
          const double skew = step.where == StepWhere::AllAffected
                                  ? rng.uniform(0.0, step.repeat_spacing_s)
                                  : 0.0;
          const int repeats =
              static_cast<int>(rng.range(step.repeat_min, step.repeat_max));
          for (int r = 0; r < repeats; ++r) {
            const double off =
                base_off + skew +
                static_cast<double>(r) * step.repeat_spacing_s *
                    rng.uniform(0.6, 1.4);
            const std::int64_t tm =
                start_ms + static_cast<std::int64_t>(off * kMsPerS);
            emit(tm, node, step.tmpl, fid, rng);
            if (tm < trace.t_end_ms) {
              first_visible = std::min(first_visible, tm);
              if (si == f.terminal_step && r == 0 &&
                  (terminal_time < 0 || tm < terminal_time))
                terminal_time = tm;
            }
          }
        }
      }

      // Register suppression intervals against background emitters.
      for (const auto& sup : f.suppressions) {
        const auto& bg = catalog_.at(sup.background_tmpl);
        std::vector<std::int32_t> targets;
        switch (sup.where) {
          case StepWhere::Initiator: targets = {init}; break;
          case StepWhere::AllAffected: targets = affected; break;
          case StepWhere::RandomAffected:
            targets = {affected[rng.below(affected.size())]};
            break;
          case StepWhere::Service: targets = {-1}; break;
        }
        const std::int64_t s0 =
            start_ms + static_cast<std::int64_t>(sup.start_offset_s * kMsPerS);
        const std::int64_t s1 =
            start_ms + static_cast<std::int64_t>(sup.end_offset_s * kMsPerS);
        std::unordered_set<std::int32_t> reps_done;
        for (const std::int32_t node : targets) {
          std::int32_t rep = -1;
          if (bg.emitter != EmitterScope::Service && node >= 0) {
            const std::int32_t stride =
                topology_.scope_size(scope_of(bg.emitter));
            rep = node / stride * stride;
          }
          if (!reps_done.insert(rep).second) continue;
          suppressions[supp_key(sup.background_tmpl, rep)].emplace_back(s0, s1);
        }
      }

      if (!f.benign && terminal_time >= 0) {
        gt.fail_time_ms = terminal_time;
        gt.start_time_ms = std::min(first_visible, gt.fail_time_ms);
        trace.faults.push_back(std::move(gt));
      }
    }
  }

  merge_intervals(suppressions);

  // ---- Phase 2: background traffic, honouring suppressions --------------
  util::Rng bg_rng = root.fork();
  for (const auto& t : catalog_.all()) {
    const auto reps = emitters_of(t);
    for (const std::int32_t rep : reps) {
      util::Rng rng = bg_rng.fork();
      auto emit_bg = [&](double tm_ms) {
        const std::int64_t tm = static_cast<std::int64_t>(tm_ms);
        if (!suppressed(suppressions, t.id, rep, tm)) emit(tm, rep, t.id, 0, rng);
      };
      switch (t.shape) {
        case SignalShape::Periodic: {
          if (t.period_s <= 0.0) break;
          const double period_ms = t.period_s * kMsPerS / cfg.background_scale;
          double tm = rng.uniform(0.0, period_ms);
          while (tm < static_cast<double>(trace.t_end_ms)) {
            emit_bg(tm);
            tm += period_ms +
                  rng.uniform(-t.jitter_s, t.jitter_s) * kMsPerS;
          }
          break;
        }
        case SignalShape::Noise: {
          const double rate_per_ms =
              t.rate_per_hour * cfg.background_scale / (3600.0 * kMsPerS);
          if (rate_per_ms > 0.0) {
            double tm = rng.exponential(1.0 / rate_per_ms);
            while (tm < static_cast<double>(trace.t_end_ms)) {
              emit_bg(tm);
              tm += rng.exponential(1.0 / rate_per_ms);
            }
          }
          // Bursts (correlated error showers on one emitter).
          const double bursts =
              t.burst_prob_per_day * cfg.duration_days * cfg.background_scale;
          const std::uint64_t nbursts = rng.poisson(bursts);
          for (std::uint64_t b = 0; b < nbursts; ++b) {
            double tm = rng.uniform(0.0, static_cast<double>(trace.t_end_ms));
            const double burst_end = tm + t.burst_len_s * kMsPerS;
            while (tm < burst_end && t.burst_rate_per_s > 0.0) {
              emit_bg(tm);
              tm += rng.exponential(kMsPerS / t.burst_rate_per_s);
            }
          }
          break;
        }
        case SignalShape::Silent:
          // Handled once per template below (whole-system occurrences).
          break;
      }
    }
    if (t.shape == SignalShape::Silent && t.occurrences_per_month > 0.0) {
      util::Rng rng = bg_rng.fork();
      const double expected = t.occurrences_per_month *
                              (cfg.duration_days / 30.0) *
                              cfg.background_scale;
      const std::uint64_t n = rng.poisson(expected);
      for (std::uint64_t i = 0; i < n; ++i) {
        const double tm =
            rng.uniform(0.0, static_cast<double>(trace.t_end_ms));
        const std::int32_t rep =
            reps.empty() ? -1
                         : reps[rng.below(reps.size())];
        if (!suppressed(suppressions, t.id, rep,
                        static_cast<std::int64_t>(tm)))
          emit(static_cast<std::int64_t>(tm), rep, t.id, 0, rng);
      }
    }
  }

  // ---- Phase 3: order everything -----------------------------------------
  std::sort(trace.records.begin(), trace.records.end(),
            [](const LogRecord& a, const LogRecord& b) {
              if (a.time_ms != b.time_ms) return a.time_ms < b.time_ms;
              if (a.true_template != b.true_template)
                return a.true_template < b.true_template;
              return a.node_id < b.node_id;
            });
  std::sort(trace.faults.begin(), trace.faults.end(),
            [](const GroundTruthFault& a, const GroundTruthFault& b) {
              return a.fail_time_ms < b.fail_time_ms;
            });
  return trace;
}

}  // namespace elsa::simlog
