#include "simlog/textgen.hpp"

#include <array>
#include <cstdio>

#include "util/strings.hpp"

namespace elsa::simlog {

namespace {

const std::array<const char*, 16> kWords = {
    "alpha", "bravo", "delta", "gamma", "sigma", "omega", "kernel", "torus",
    "tree",  "ido",   "chip",  "port",  "fan",   "psu",   "dimm",   "asic"};

std::string random_path(util::Rng& rng) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "/bgl/%s/%s%llu",
                kWords[rng.below(kWords.size())],
                kWords[rng.below(kWords.size())],
                static_cast<unsigned long long>(rng.below(1000)));
  return buf;
}

std::string random_ip(util::Rng& rng) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu.%llu.%llu.%llu",
                static_cast<unsigned long long>(rng.range(10, 192)),
                static_cast<unsigned long long>(rng.below(256)),
                static_cast<unsigned long long>(rng.below(256)),
                static_cast<unsigned long long>(rng.range(1, 254)));
  return buf;
}

}  // namespace

std::string render_message(const std::string& pattern, util::Rng& rng,
                           const std::string& location_code) {
  const auto tokens = util::split(pattern, " ");
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& tok : tokens) {
    if (tok == "<num>") {
      out.push_back(std::to_string(rng.below(65536)));
    } else if (tok == "<hex>") {
      char buf[24];
      std::snprintf(buf, sizeof buf, "0x%08llx",
                    static_cast<unsigned long long>(rng.next_u64() & 0xffffffffULL));
      out.push_back(buf);
    } else if (tok == "<loc>") {
      out.push_back(location_code);
    } else if (tok == "<ip>") {
      out.push_back(random_ip(rng));
    } else if (tok == "<path>") {
      out.push_back(random_path(rng));
    } else if (tok == "<word>") {
      out.push_back(kWords[rng.below(kWords.size())]);
    } else {
      out.push_back(tok);
    }
  }
  return util::join(out, " ");
}

std::string pattern_as_template(const std::string& pattern) {
  const auto tokens = util::split(pattern, " ");
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& tok : tokens) {
    if (tok == "<num>")
      out.emplace_back("d+");
    else if (tok == "<hex>" || tok == "<loc>" || tok == "<ip>" ||
             tok == "<path>" || tok == "<word>")
      out.emplace_back("*");
    else
      out.push_back(tok);
  }
  return util::join(out, " ");
}

}  // namespace elsa::simlog
