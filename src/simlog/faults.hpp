// Fault catalog: every injectable fault type with its logged *syndrome*.
//
// The paper's key premise is that different faults leave very different
// footprints: a memory fault floods the log with correctable-error messages
// before the uncorrectable one; a node crash announces itself by silence (a
// periodic emitter stops); a node-card failure produces a slow cascade with
// hour-scale gaps; an NFS outage hits hundreds of nodes within seconds.
// Each FaultType below encodes one footprint as (a) a sequence of visible
// syndrome steps with per-step delays and emitting locations and (b) a set
// of suppression effects that silence background emitters — the "lack of
// messages" symptom that pure event-co-occurrence mining cannot observe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simlog/catalog.hpp"
#include "topology/topology.hpp"

namespace elsa::simlog {

/// Where a syndrome step's records are emitted.
enum class StepWhere : std::uint8_t {
  Initiator,       ///< the node where the fault starts
  AllAffected,     ///< every node in the fault's affected set
  RandomAffected,  ///< one uniformly drawn affected node (may differ from
                   ///< the initiator — the source of location-prediction
                   ///< error the paper discusses in §V)
  Service,         ///< the service node (node_id = -1)
};

/// One visible step of a fault syndrome.
struct SyndromeStep {
  std::uint16_t tmpl = 0;       ///< catalog template emitted by this step
  double offset_s = 0.0;        ///< mean delay from fault start
  double jitter_s = 0.0;        ///< uniform +/- jitter on the delay
  int repeat_min = 1;           ///< messages per occurrence (burst size) ...
  int repeat_max = 1;           ///< ... drawn uniformly in [min, max]
  double repeat_spacing_s = 1.0;
  StepWhere where = StepWhere::Initiator;
  /// Probability the step is visible at all for a given fault instance;
  /// models flaky sensors / lost messages.
  double emit_prob = 1.0;
};

/// Silence a background emitter on the affected component(s) during
/// [start_offset_s, end_offset_s) relative to the fault start. This is the
/// silent precursor: the heartbeat stops before the crash is logged.
struct SuppressionEffect {
  std::uint16_t background_tmpl = 0;
  double start_offset_s = 0.0;
  double end_offset_s = 0.0;
  StepWhere where = StepWhere::Initiator;
};

struct FaultType {
  std::string name;
  std::string category;  ///< evaluation bucket ("memory", "nodecard", ...)
  /// Poisson arrival rate across the whole machine, per day.
  double rate_per_day = 0.0;
  /// Hierarchy scope the affected node set is drawn from, around the
  /// initiating node. Scope::Node = no propagation.
  topo::Scope propagation = topo::Scope::Node;
  int affected_min = 1;
  int affected_max = 1;
  /// For Scope::System faults: fraction of all nodes hit (NFS storms).
  double global_fraction = 0.0;
  std::vector<SyndromeStep> steps;
  std::vector<SuppressionEffect> suppressions;
  /// Index into `steps` of the terminal FAILURE/FATAL record used as the
  /// ground-truth failure instant. Must exist and carry failure severity
  /// unless the chain is benign.
  std::size_t terminal_step = 0;
  /// Benign chains (component restarts, multiline messages) produce
  /// correlated log traffic but are NOT ground-truth failures — the paper
  /// finds ~23 % of mined sequences are such non-error sequences (§IV.A).
  bool benign = false;

  /// Mean lead time (s) between the first visible step and the terminal
  /// step — derived convenience for tests and docs.
  double mean_lead_s() const;
};

class FaultCatalog {
 public:
  std::size_t add(FaultType f);
  std::size_t size() const { return faults_.size(); }
  const FaultType& at(std::size_t i) const { return faults_.at(i); }
  const std::vector<FaultType>& all() const { return faults_; }
  const FaultType* find(const std::string& name) const;

  /// Validates every fault against a catalog (template ids exist, terminal
  /// step has failure severity, offsets ordered). Throws on violation.
  void validate(const Catalog& catalog) const;

 private:
  std::vector<FaultType> faults_;
};

}  // namespace elsa::simlog
