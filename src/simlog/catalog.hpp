// Background event catalog: the set of event types a healthy system logs.
//
// The paper's central observation (§III, Fig 1) is that event types fall in
// three signal classes — periodic, noise, and silent — and that faults
// perturb each class differently. The catalog encodes, per event type, its
// class, its emission parameters, and which hierarchy level emits it, so
// the trace generator can synthesise a log whose per-type signals have the
// right shapes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "simlog/record.hpp"

namespace elsa::simlog {

/// The three signal classes from paper Fig 1.
enum class SignalShape : std::uint8_t { Periodic, Noise, Silent };

const char* to_string(SignalShape s);

/// Which component instances emit a given background event type. Coarser
/// scopes mean fewer concurrent emitters, which is what makes dropouts of a
/// single emitter visible in the aggregated per-type signal.
enum class EmitterScope : std::uint8_t {
  PerNode,
  PerNodeCard,
  PerMidplane,
  PerRack,
  Service,  ///< a single system-wide daemon (CIODB, mmcs, ...)
};

const char* to_string(EmitterScope s);

/// One background event type. `text` is the message pattern; placeholder
/// tokens <num>, <hex>, <loc>, <ip>, <path>, <word> are filled with random
/// values per instance so the template miner has realistic variability.
struct EventTemplate {
  std::uint16_t id = 0;
  std::string name;       ///< short stable identifier, e.g. "ddr_corrected"
  std::string text;
  Severity severity = Severity::Info;
  std::string component;  ///< "KERNEL", "MMCS", "LINKCARD", ... (log facility)
  SignalShape shape = SignalShape::Silent;
  EmitterScope emitter = EmitterScope::PerMidplane;

  // -- Periodic emitters --------------------------------------------------
  double period_s = 0.0;   ///< mean inter-emission period per emitter
  double jitter_s = 0.0;   ///< uniform +/- jitter on the period

  // -- Noise emitters ------------------------------------------------------
  double rate_per_hour = 0.0;     ///< Poisson base rate per emitter
  double burst_prob_per_day = 0.0;///< bursts per emitter-day
  double burst_rate_per_s = 0.0;  ///< rate inside a burst
  double burst_len_s = 0.0;

  // -- Silent emitters -----------------------------------------------------
  double occurrences_per_month = 0.0;  ///< whole-system rare occurrences
};

/// Ordered collection of event templates with name lookup. Fault syndromes
/// reference catalog templates by id; ids are dense and equal the index.
class Catalog {
 public:
  /// Registers a template and assigns its id. Name must be unique.
  std::uint16_t add(EventTemplate t);

  std::size_t size() const { return templates_.size(); }
  const EventTemplate& at(std::uint16_t id) const { return templates_.at(id); }
  const std::vector<EventTemplate>& all() const { return templates_; }

  /// Id lookup by stable name; nullopt if absent.
  std::optional<std::uint16_t> find(const std::string& name) const;

  /// Id lookup that throws on absence — for scenario-building code where a
  /// missing name is a programming error.
  std::uint16_t require(const std::string& name) const;

 private:
  std::vector<EventTemplate> templates_;
};

}  // namespace elsa::simlog
