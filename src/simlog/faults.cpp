#include "simlog/faults.hpp"

#include <algorithm>
#include <stdexcept>

namespace elsa::simlog {

double FaultType::mean_lead_s() const {
  if (steps.empty()) return 0.0;
  double first = steps.front().offset_s;
  for (const auto& s : steps) first = std::min(first, s.offset_s);
  return steps.at(terminal_step).offset_s - first;
}

std::size_t FaultCatalog::add(FaultType f) {
  faults_.push_back(std::move(f));
  return faults_.size() - 1;
}

const FaultType* FaultCatalog::find(const std::string& name) const {
  for (const auto& f : faults_)
    if (f.name == name) return &f;
  return nullptr;
}

void FaultCatalog::validate(const Catalog& catalog) const {
  for (const auto& f : faults_) {
    if (f.steps.empty())
      throw std::invalid_argument("fault '" + f.name + "' has no steps");
    if (f.terminal_step >= f.steps.size())
      throw std::invalid_argument("fault '" + f.name +
                                  "': terminal_step out of range");
    for (const auto& s : f.steps) {
      if (s.tmpl >= catalog.size())
        throw std::invalid_argument("fault '" + f.name +
                                    "': step references unknown template");
      if (s.repeat_min < 1 || s.repeat_max < s.repeat_min)
        throw std::invalid_argument("fault '" + f.name +
                                    "': bad repeat range");
      if (s.emit_prob < 0.0 || s.emit_prob > 1.0)
        throw std::invalid_argument("fault '" + f.name + "': bad emit_prob");
    }
    const auto& term = f.steps[f.terminal_step];
    if (!f.benign) {
      if (!is_failure_severity(catalog.at(term.tmpl).severity))
        throw std::invalid_argument(
            "fault '" + f.name +
            "': terminal step template lacks FAILURE/FATAL severity");
      if (term.emit_prob != 1.0)
        throw std::invalid_argument("fault '" + f.name +
                                    "': terminal step must always emit");
    }
    for (const auto& sup : f.suppressions) {
      if (sup.background_tmpl >= catalog.size())
        throw std::invalid_argument("fault '" + f.name +
                                    "': suppression references unknown template");
      if (sup.end_offset_s <= sup.start_offset_s)
        throw std::invalid_argument("fault '" + f.name +
                                    "': empty suppression interval");
    }
    if (f.affected_min < 1 || f.affected_max < f.affected_min)
      throw std::invalid_argument("fault '" + f.name + "': bad affected range");
    if (f.rate_per_day < 0.0)
      throw std::invalid_argument("fault '" + f.name + "': negative rate");
  }
}

}  // namespace elsa::simlog
