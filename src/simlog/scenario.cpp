#include "simlog/scenario.hpp"

#include <array>

#include "util/rng.hpp"

namespace elsa::simlog {

namespace {

EventTemplate periodic(std::string name, std::string text, EmitterScope scope,
                       double period_s, double jitter_s,
                       std::string component = "MONITOR",
                       Severity sev = Severity::Info) {
  EventTemplate t;
  t.name = std::move(name);
  t.text = std::move(text);
  t.severity = sev;
  t.component = std::move(component);
  t.shape = SignalShape::Periodic;
  t.emitter = scope;
  t.period_s = period_s;
  t.jitter_s = jitter_s;
  return t;
}

EventTemplate noise(std::string name, std::string text, EmitterScope scope,
                    double rate_per_hour, std::string component = "KERNEL",
                    Severity sev = Severity::Info,
                    double burst_prob_per_day = 0.0,
                    double burst_rate_per_s = 0.0, double burst_len_s = 0.0) {
  EventTemplate t;
  t.name = std::move(name);
  t.text = std::move(text);
  t.severity = sev;
  t.component = std::move(component);
  t.shape = SignalShape::Noise;
  t.emitter = scope;
  t.rate_per_hour = rate_per_hour;
  t.burst_prob_per_day = burst_prob_per_day;
  t.burst_rate_per_s = burst_rate_per_s;
  t.burst_len_s = burst_len_s;
  return t;
}

EventTemplate silent(std::string name, std::string text, EmitterScope scope,
                     Severity sev, std::string component = "MMCS",
                     double occurrences_per_month = 0.0) {
  EventTemplate t;
  t.name = std::move(name);
  t.text = std::move(text);
  t.severity = sev;
  t.component = std::move(component);
  t.shape = SignalShape::Silent;
  t.emitter = scope;
  t.occurrences_per_month = occurrences_per_month;
  return t;
}

SyndromeStep step(std::uint16_t tmpl, double offset_s, double jitter_s,
                  StepWhere where = StepWhere::Initiator, int rep_min = 1,
                  int rep_max = 1, double spacing_s = 1.0,
                  double emit_prob = 1.0) {
  SyndromeStep s;
  s.tmpl = tmpl;
  s.offset_s = offset_s;
  s.jitter_s = jitter_s;
  s.where = where;
  s.repeat_min = rep_min;
  s.repeat_max = rep_max;
  s.repeat_spacing_s = spacing_s;
  s.emit_prob = emit_prob;
  return s;
}

}  // namespace

void add_filler_templates(Catalog& catalog, int count, std::uint64_t seed) {
  static const std::array<const char*, 20> kSubsystems = {
      "bic",    "palomino", "tsx",   "mcp",    "lustre", "gpfs",  "ras",
      "census", "bgldiag",  "cmcs",  "perfmon", "sramc",  "clock", "barrier",
      "collective", "dma",  "sysio", "power",  "bulkio", "vpd"};
  static const std::array<const char*, 16> kVerbs = {
      "initialized", "completed",  "registered", "synchronized",
      "flushed",     "validated",  "rescanned",  "calibrated",
      "throttled",   "negotiated", "refreshed",  "reported",
      "acknowledged", "suspended", "resumed",    "probed"};
  static const std::array<const char*, 8> kNouns = {
      "buffer", "channel", "partition", "descriptor",
      "session", "table",  "segment",   "queue"};

  util::Rng rng(seed ^ 0xf111e5ULL);
  for (int i = 0; i < count; ++i) {
    const char* sub = kSubsystems[rng.below(kSubsystems.size())];
    const char* verb = kVerbs[rng.below(kVerbs.size())];
    const char* noun = kNouns[rng.below(kNouns.size())];
    char name[64], text[160];
    std::snprintf(name, sizeof name, "flr_%s_%s_%03d", sub, verb, i);
    std::snprintf(text, sizeof text, "%s %s %s id%03d <num> state <hex>", sub,
                  noun, verb, i);

    const double u = rng.uniform();
    EventTemplate t;
    // Paper: silent signals are the majority of event types.
    if (u < 0.60) {
      t = silent(name, text, EmitterScope::PerMidplane, Severity::Info,
                 "MONITOR", rng.uniform(6.0, 70.0));
    } else if (u < 0.85) {
      t = noise(name, text, EmitterScope::PerMidplane,
                rng.uniform(0.004, 0.08), "KERNEL", Severity::Info,
                /*burst_prob_per_day=*/rng.uniform(0.0, 0.01),
                /*burst_rate_per_s=*/0.5, /*burst_len_s=*/20.0);
    } else {
      t = periodic(name, text,
                   rng.bernoulli(0.5) ? EmitterScope::PerRack
                                      : EmitterScope::Service,
                   rng.uniform(300.0, 7200.0), rng.uniform(1.0, 20.0));
    }
    // A sprinkle of WARNING severity so non-error filtering is non-trivial.
    if (rng.bernoulli(0.1)) t.severity = Severity::Warning;
    catalog.add(std::move(t));
  }
}

Scenario make_bluegene_scenario(std::uint64_t seed, double duration_days,
                                int filler_templates) {
  Catalog cat;

  // --- Periodic health traffic (dropout-visible heartbeats) --------------
  cat.add(periodic("mmcs_heartbeat",
                   "mmcs db server polling status ok interval <num>",
                   EmitterScope::Service, 30.0, 2.0, "MMCS"));
  cat.add(periodic("ciodb_poll",
                   "ciodb job table scan completed <num> jobs active",
                   EmitterScope::Service, 20.0, 2.0, "CIODB"));
  cat.add(periodic("node_health",
                   "node card status check ok <loc> temperature <num> C",
                   EmitterScope::PerNodeCard, 240.0, 10.0, "MONITOR"));
  cat.add(periodic("fan_status", "fan module <num> rpm <num> nominal",
                   EmitterScope::PerMidplane, 300.0, 15.0, "MONITOR"));
  cat.add(periodic("env_monitor",
                   "environment monitor readings voltage <num> mV current <num> mA",
                   EmitterScope::PerRack, 600.0, 30.0, "MONITOR"));
  cat.add(periodic("link_heartbeat", "linkcard status poll ok port <num>",
                   EmitterScope::PerMidplane, 120.0, 8.0, "LINKCARD"));

  // --- Noise traffic -------------------------------------------------------
  // Correctable-memory noise; also reused as a memory-fault syndrome step.
  // Constant correctable-memory chatter: frequent enough that neither a
  // window-rule (DM) nor a weak pair gate can mistake generic DDR noise
  // for a reliable uncorrectable-error precursor.
  cat.add(noise("ddr_corrected",
                "<num> ddr errors(s) detected and corrected on rank 0, symbol <num> bit <num>",
                EmitterScope::PerNodeCard, 0.035, "KERNEL", Severity::Info,
                0.003, 2.0, 25.0));
  // High-base-rate cache noise: makes cache faults genuinely hard (Fig 9).
  cat.add(noise("l3_edram_corrected",
                "number of correctable errors detected in L3 EDRAMs <num>",
                EmitterScope::PerNodeCard, 0.10, "KERNEL", Severity::Info,
                0.010, 1.5, 40.0));
  cat.add(noise("icache_parity", "instruction cache parity error corrected <hex>",
                EmitterScope::PerNode, 0.0005, "KERNEL"));
  // Torus retries: also a (weak) network-fault precursor.
  // Torus retries burst both before real link failures AND on their own
  // (transient congestion): a weak precursor that only high-confidence
  // mining can safely reject.
  cat.add(noise("torus_retry",
                "torus sender retransmission count <num> exceeded threshold",
                EmitterScope::PerMidplane, 0.004, "KERNEL", Severity::Info,
                0.20, 1.0, 15.0));
  cat.add(noise("eth_crc", "ethernet CRC error count <num> on port <num>",
                EmitterScope::PerRack, 0.05, "LINKCARD"));

  // --- Fault-syndrome and benign-chain templates (silent class) ----------
  // Precursor templates also occur occasionally WITHOUT a following
  // failure (correctable errors that never escalate) — the honest source
  // of false positives that keeps precision below 100 %.
  const auto dir_corr =
      cat.add(silent("dir_corr", "correctable error detected in directory <hex>",
                     EmitterScope::PerNode, Severity::Warning, "KERNEL", 18.0));
  const auto dir_uncorr = cat.add(
      silent("dir_uncorr", "uncorrectable error detected in directory <hex>",
             EmitterScope::PerNode, Severity::Failure, "KERNEL"));
  const auto capture_dir = cat.add(silent(
      "capture_dir", "capture first directory correctable error address <hex> 0",
      EmitterScope::PerNode, Severity::Info, "KERNEL"));
  const auto ddr_failing =
      cat.add(silent("ddr_failing", "DDR failing data registers: <hex> <hex>",
                     EmitterScope::PerNode, Severity::Severe, "KERNEL"));
  const auto parity_plb =
      cat.add(silent("parity_plb", "parity error in read queue PLB <hex>",
                     EmitterScope::PerNode, Severity::Severe, "KERNEL"));

  const auto bit_sparing = cat.add(silent(
      "bit_sparing",
      "midplaneswitchcontroller performing bit sparing on <loc> bit <num>",
      EmitterScope::PerMidplane, Severity::Warning, "LINKCARD", 8.0));
  const auto linkcard_power = cat.add(
      silent("linkcard_power", "linkcard power module <loc> is not accessible",
             EmitterScope::PerMidplane, Severity::Severe, "LINKCARD", 4.0));
  const auto ido_comm = cat.add(silent(
      "ido_comm",
      "problem communicating with service card, ido chip: <hex> java.io.ioexception: could not find ethernetswitch on port:address 1:136",
      EmitterScope::PerMidplane, Severity::Severe, "HARDWARE"));
  const auto prepare_service = cat.add(silent(
      "prepare_service",
      "prepareforservice is being done on this part <loc> mcardsernum( <num> ) mtype( <num> ) by <word>",
      EmitterScope::PerMidplane, Severity::Warning, "SERVICE"));
  const auto endservice_restart = cat.add(silent(
      "endservice_restart",
      "endserviceaction is restarting the nodecards in midplane <loc> as part of service action <num>",
      EmitterScope::PerMidplane, Severity::Warning, "SERVICE"));
  const auto vpd_mismatch = cat.add(silent(
      "vpd_mismatch",
      "node card vpd check: <loc> node in processor card slot <num> do not match. vpd ecid <num> found <num>",
      EmitterScope::PerNodeCard, Severity::Severe, "SERVICE"));
  const auto no_power_module = cat.add(
      silent("no_power_module", "no power module <loc> found found on link card",
             EmitterScope::PerMidplane, Severity::Failure, "LINKCARD"));
  const auto temp_over =
      cat.add(silent("temp_over", "temperature Over Limit on link card",
                     EmitterScope::PerMidplane, Severity::Failure, "LINKCARD"));

  const auto mailbox_unavail = cat.add(silent(
      "mailbox_unavail", "mailbox controller unavailable for <loc> retrying",
      EmitterScope::PerNode, Severity::Warning, "KERNEL", 12.0));
  const auto node_no_response = cat.add(
      silent("node_no_response", "no response from node card <loc> rts tree timeout",
             EmitterScope::Service, Severity::Fatal, "MMCS"));
  const auto gpr_header =
      cat.add(silent("gpr_header", "general purpose registers:",
                     EmitterScope::PerNode, Severity::Info, "KERNEL"));
  const auto gpr_regs =
      cat.add(silent("gpr_regs", "lr: <hex> cr: <hex> xer: <hex> ctr: <hex>",
                     EmitterScope::PerNode, Severity::Info, "KERNEL"));

  const auto tree_receiver = cat.add(
      silent("tree_receiver", "tree receiver <num> in re-synch state event",
             EmitterScope::PerMidplane, Severity::Warning, "KERNEL", 8.0));
  const auto torus_failure = cat.add(
      silent("torus_failure", "torus link failure detected on dimension <word>",
             EmitterScope::PerMidplane, Severity::Failure, "KERNEL"));
  const auto torus_retry = cat.require("torus_retry");

  const auto l3_major = cat.add(silent("l3_major", "L3 major internal error",
                                       EmitterScope::PerNode, Severity::Failure,
                                       "KERNEL"));
  const auto l3_summary = cat.add(silent(
      "l3_ecc_summary", "L3 EDRAM error summary threshold reached bank <num>",
      EmitterScope::PerNode, Severity::Warning, "KERNEL"));
  const auto l3_edram = cat.require("l3_edram_corrected");

  const auto ciodb_abort = cat.add(
      silent("ciodb_abort", "ciodb exited abnormally due to signal: aborted",
             EmitterScope::Service, Severity::Failure, "CIODB"));
  const auto mmcs_abort = cat.add(silent(
      "mmcs_abort", "mmcs server exited abnormally due to signal: <word> n+",
      EmitterScope::Service, Severity::Failure, "MMCS"));
  const auto job_timeout =
      cat.add(silent("job_timeout", "job <num> timed out. n+",
                     EmitterScope::Service, Severity::Severe, "CIODB"));

  const auto idoproxy_start = cat.add(silent(
      "idoproxy_start",
      "idoproxydb has been started: $name: <num> $ input parameters: -enableflush -loguserinfo db.properties bluegene1",
      EmitterScope::Service, Severity::Info, "MMCS"));
  const auto ciodb_restart =
      cat.add(silent("ciodb_restart", "ciodb has been restarted.",
                     EmitterScope::Service, Severity::Info, "CIODB"));
  const auto bglmaster_start = cat.add(silent(
      "bglmaster_start",
      "bglmaster has been started: ./bglmaster --consoleip 127.0.0.1 --consoleport 32035 --configfile bglmaster.init --autorestart y",
      EmitterScope::Service, Severity::Info, "MMCS"));
  const auto mmcs_start = cat.add(silent(
      "mmcs_start",
      "mmcs db server has been started: ./mmcs db server --usedatabase bgl --dbproperties <path> --iolog /bgl/bluelight/logs/bgl --reconnect-blocks all n+",
      EmitterScope::Service, Severity::Info, "MMCS"));

  add_filler_templates(cat, filler_templates, seed);

  // ---- Fault catalog -------------------------------------------------------
  FaultCatalog fc;

  {  // DDR memory cascade (Table I "Memory error"): ~1 minute of lead.
    FaultType f;
    f.name = "memory_ddr";
    f.category = "memory";
    f.rate_per_day = 2.5;
    f.propagation = topo::Scope::Midplane;
    f.affected_min = 2;
    f.affected_max = 5;
    f.steps = {
        step(dir_corr, 0.0, 2.0, StepWhere::Initiator, 3, 8, 8.0, 0.78),
        step(cat.require("ddr_corrected"), 10.0, 4.0, StepWhere::AllAffected,
             5, 12, 4.0),
        step(dir_uncorr, 65.0, 12.0, StepWhere::RandomAffected),
        step(capture_dir, 68.0, 12.0),
        step(ddr_failing, 72.0, 12.0),
        step(parity_plb, 75.0, 12.0, StepWhere::Initiator, 1, 1, 1.0, 0.7),
    };
    f.terminal_step = 2;
    fc.add(std::move(f));
  }

  {  // Node-card service cascade (Tables I/II): hour-scale lead, no spread.
    FaultType f;
    f.name = "nodecard_fail";
    f.category = "nodecard";
    f.rate_per_day = 1.4;
    f.propagation = topo::Scope::Node;
    f.steps = {
        step(bit_sparing, 0.0, 10.0),
        step(linkcard_power, 440.0, 30.0),
        step(ido_comm, 490.0, 30.0, StepWhere::Initiator, 1, 1, 1.0, 0.9),
        step(prepare_service, 560.0, 40.0, StepWhere::Initiator, 1, 1, 1.0, 0.85),
        step(endservice_restart, 1200.0, 120.0, StepWhere::Initiator, 1, 1, 1.0, 0.8),
        step(vpd_mismatch, 1900.0, 180.0, StepWhere::Initiator, 1, 1, 1.0, 0.9),
        step(no_power_module, 3200.0, 200.0),
        step(temp_over, 3230.0, 10.0),
    };
    f.terminal_step = 6;
    fc.add(std::move(f));
  }

  {  // Silent-precursor node crash: heartbeat stops, then a FATAL report.
    FaultType f;
    f.name = "node_crash";
    f.category = "software";
    f.rate_per_day = 2.8;
    f.propagation = topo::Scope::Node;
    f.steps = {
        step(mailbox_unavail, 0.0, 5.0, StepWhere::Initiator, 1, 3, 20.0, 0.70),
        step(node_no_response, 480.0, 15.0, StepWhere::Service),
        step(gpr_header, 510.0, 10.0),
        step(gpr_regs, 511.0, 10.0, StepWhere::Initiator, 2, 4, 1.0),
    };
    f.terminal_step = 1;
    f.suppressions = {
        {cat.require("node_health"), 0.0, 900.0, StepWhere::Initiator}};
    fc.add(std::move(f));
  }

  {  // Torus/network failure: short lead, unreliable precursors (Fig 9 low).
    FaultType f;
    f.name = "network_torus";
    f.category = "network";
    f.rate_per_day = 1.5;
    f.propagation = topo::Scope::Midplane;
    f.affected_min = 2;
    f.affected_max = 4;
    f.steps = {
        step(torus_retry, 0.0, 3.0, StepWhere::AllAffected, 2, 5, 5.0, 0.55),
        step(tree_receiver, 12.0, 4.0, StepWhere::Initiator, 1, 1, 1.0, 0.55),
        step(torus_failure, 32.0, 8.0, StepWhere::RandomAffected),
    };
    f.terminal_step = 2;
    fc.add(std::move(f));
  }

  {  // L3 cache failure: precursor burst is camouflaged by background bursts.
    FaultType f;
    f.name = "cache_l3";
    f.category = "cache";
    f.rate_per_day = 1.8;
    f.propagation = topo::Scope::Node;
    f.steps = {
        step(l3_edram, 0.0, 2.0, StepWhere::Initiator, 8, 20, 2.0),
        step(l3_summary, 6.0, 3.0, StepWhere::Initiator, 1, 1, 1.0, 0.40),
        step(l3_major, 35.0, 15.0),
    };
    f.terminal_step = 2;
    fc.add(std::move(f));
  }

  {  // CIODB crash (Table II): everything at once, zero prediction window.
    FaultType f;
    f.name = "ciodb_crash";
    f.category = "io";
    f.rate_per_day = 1.2;
    f.propagation = topo::Scope::Node;
    f.steps = {
        step(ciodb_abort, 0.0, 0.5, StepWhere::Service),
        step(mmcs_abort, 1.0, 0.5, StepWhere::Service),
        step(job_timeout, 2.0, 1.0, StepWhere::Service, 2, 6, 1.0),
    };
    f.terminal_step = 0;
    fc.add(std::move(f));
  }

  {  // Uncorrectable memory error with no correctable prelude: nothing to
     // predict from. A large share of real failures look like this, which
     // is why even good predictors top out well below 100 % recall.
    FaultType f;
    f.name = "memory_fast";
    f.category = "memory";
    f.rate_per_day = 1.3;
    f.propagation = topo::Scope::Node;
    f.steps = {
        step(dir_uncorr, 0.0, 1.0),
        step(ddr_failing, 4.0, 2.0),
    };
    f.terminal_step = 0;
    fc.add(std::move(f));
  }

  {  // Node card that dies without service-action prelude.
    FaultType f;
    f.name = "nodecard_fast";
    f.category = "nodecard";
    f.rate_per_day = 0.3;
    f.propagation = topo::Scope::Node;
    f.steps = {
        step(no_power_module, 0.0, 1.0),
        step(temp_over, 25.0, 5.0),
    };
    f.terminal_step = 0;
    fc.add(std::move(f));
  }

  {  // L3 failure with no correctable prelude at all.
    FaultType f;
    f.name = "cache_fast";
    f.category = "cache";
    f.rate_per_day = 0.9;
    f.propagation = topo::Scope::Node;
    f.steps = {
        step(l3_major, 0.0, 1.0),
    };
    f.terminal_step = 0;
    fc.add(std::move(f));
  }

  {  // Instant kernel crash, no silent prelude.
    FaultType f;
    f.name = "software_fast";
    f.category = "software";
    f.rate_per_day = 1.3;
    f.propagation = topo::Scope::Node;
    f.steps = {
        step(node_no_response, 0.0, 1.0, StepWhere::Service),
        step(gpr_header, 25.0, 5.0),
        step(gpr_regs, 26.0, 5.0, StepWhere::Initiator, 2, 4, 1.0),
    };
    f.terminal_step = 0;
    fc.add(std::move(f));
  }

  {  // Benign component-restart chain (Table I): INFO only, not a failure.
    FaultType f;
    f.name = "restart_sequence";
    f.category = "benign";
    f.rate_per_day = 2.6;
    f.propagation = topo::Scope::Node;
    f.benign = true;
    f.steps = {
        step(idoproxy_start, 0.0, 2.0, StepWhere::Service),
        step(ciodb_restart, 25.0, 5.0, StepWhere::Service),
        step(bglmaster_start, 40.0, 5.0, StepWhere::Service),
        step(mmcs_start, 55.0, 5.0, StepWhere::Service),
    };
    f.terminal_step = 0;
    fc.add(std::move(f));
  }

  {  // Benign multiline register dump (Table I "Multiline messages").
    FaultType f;
    f.name = "multiline_dump";
    f.category = "benign";
    f.rate_per_day = 1.0;
    f.propagation = topo::Scope::Node;
    f.benign = true;
    f.steps = {
        step(gpr_header, 0.0, 0.2),
        step(gpr_regs, 1.0, 0.2, StepWhere::Initiator, 2, 4, 1.0),
    };
    f.terminal_step = 0;
    fc.add(std::move(f));
  }

  Scenario sc{
      .name = "bluegene",
      .generator = TraceGenerator(topo::Topology::bluegene(4, 2, 8, 16),
                                  std::move(cat), std::move(fc)),
      .config = {},
      .train_days = 4.0,
  };
  sc.config.duration_days = duration_days;
  sc.config.seed = seed;
  return sc;
}

Scenario make_mercury_scenario(std::uint64_t seed, double duration_days,
                               int filler_templates) {
  Catalog cat;

  cat.add(periodic("pbs_server_poll", "pbs server cycle complete <num> jobs queued",
                   EmitterScope::Service, 30.0, 3.0, "PBS"));
  cat.add(periodic("nfs_mount_check", "nfs mount table verified <num> exports",
                   EmitterScope::Service, 120.0, 10.0, "NFS"));
  // On a flat cluster "per node card" means per node: 891 emitters. A
  // 15-minute sweep keeps the aggregate rate production-plausible.
  cat.add(periodic("node_sensors", "sensor sweep ok <loc> load <num> temp <num>",
                   EmitterScope::PerNodeCard, 900.0, 40.0, "MONITOR"));
  cat.add(periodic("ib_port_poll", "infiniband port counters sampled lid <num>",
                   EmitterScope::PerRack, 240.0, 15.0, "IB"));

  cat.add(noise("ib_symbol_err", "ib symbol error count <num> on lid <num>",
                EmitterScope::PerRack, 0.02, "IB", Severity::Info, 0.004, 1.0,
                20.0));
  // Per-node on this machine: keep the per-emitter rate tiny so the
  // aggregate stays a sparse (silent-class) signal whose fault bursts
  // stand out.
  cat.add(noise("ecc_corrected", "ECC single bit error corrected dimm <num> addr <hex>",
                EmitterScope::PerNodeCard, 0.001, "KERNEL", Severity::Info,
                0.0002, 1.5, 20.0));
  cat.add(noise("scsi_retry", "scsi retry cmd <hex> target <num>",
                EmitterScope::PerRack, 0.008, "DISK"));

  const auto rpc_bad_reclen = cat.add(silent(
      "rpc_bad_reclen", "rpc: bad tcp reclen <num> (non-terminal)",
      EmitterScope::PerNode, Severity::Warning, "NFS", 7.0));
  const auto nfs_server_timeout = cat.add(
      silent("nfs_server_timeout", "nfs: server <word> not responding, timed out",
             EmitterScope::Service, Severity::Severe, "NFS"));
  const auto nfs_unavailable = cat.add(silent(
      "nfs_unavailable", "nfs: RPC call returned error 5 filesystem unavailable",
      EmitterScope::PerNode, Severity::Failure, "NFS"));

  const auto ifup_failed = cat.add(silent(
      "ifup_failed", "ifup: could not get a valid interface name: -> skipped",
      EmitterScope::PerNode, Severity::Warning, "NET", 9.0));
  const auto unexpected_restart = cat.add(silent(
      "unexpected_restart", "node unexpected restart detected uptime reset <loc>",
      EmitterScope::PerNode, Severity::Failure, "KERNEL"));

  const auto ecc_uncorrected = cat.add(silent(
      "ecc_uncorrected", "ECC uncorrectable multi bit error dimm <num> addr <hex>",
      EmitterScope::PerNode, Severity::Failure, "KERNEL"));

  const auto smart_warning = cat.add(silent(
      "smart_warning", "smartd device <path> 1 currently unreadable pending sectors",
      EmitterScope::PerNode, Severity::Warning, "DISK", 12.0));
  const auto disk_failed = cat.add(
      silent("disk_failed", "end_request i/o error dev <word> sector <num>",
             EmitterScope::PerNode, Severity::Failure, "DISK"));

  const auto pbs_down =
      cat.add(silent("pbs_down", "pbs server daemon died unexpectedly restarting",
                     EmitterScope::Service, Severity::Failure, "PBS"));
  const auto pbs_recover =
      cat.add(silent("pbs_recover", "pbs server recovered state from <path>",
                     EmitterScope::Service, Severity::Info, "PBS"));

  add_filler_templates(cat, filler_templates, seed ^ 0x6d657263ULL);

  FaultCatalog fc;

  {  // NFS outage: near-simultaneous storm on ~25 % of the machine (§V).
    FaultType f;
    f.name = "nfs_outage";
    f.category = "io";
    f.rate_per_day = 0.9;
    f.propagation = topo::Scope::System;
    f.global_fraction = 0.25;
    f.affected_min = 100;
    f.affected_max = 400;
    f.steps = {
        step(rpc_bad_reclen, 0.0, 2.0, StepWhere::AllAffected, 8, 25, 0.4),
        step(nfs_server_timeout, 15.0, 5.0, StepWhere::Service),
        step(nfs_unavailable, 32.0, 10.0, StepWhere::RandomAffected),
    };
    f.terminal_step = 2;
    fc.add(std::move(f));
  }

  {  // Unexpected hardware restart propagating across a few nodes (§V).
    FaultType f;
    f.name = "node_restart_hw";
    f.category = "software";
    f.rate_per_day = 2.0;
    f.propagation = topo::Scope::Rack;
    f.affected_min = 1;
    f.affected_max = 3;
    f.steps = {
        step(ifup_failed, 0.0, 5.0, StepWhere::AllAffected),
        step(unexpected_restart, 95.0, 30.0, StepWhere::RandomAffected),
    };
    f.terminal_step = 1;
    fc.add(std::move(f));
  }

  {  // ECC memory failure, one-minute lead (like BG/L memory).
    FaultType f;
    f.name = "mem_ecc";
    f.category = "memory";
    f.rate_per_day = 2.0;
    f.propagation = topo::Scope::Node;
    f.steps = {
        step(cat.require("ecc_corrected"), 0.0, 2.0, StepWhere::Initiator, 4,
             10, 5.0),
        step(ecc_uncorrected, 58.0, 12.0),
    };
    f.terminal_step = 1;
    fc.add(std::move(f));
  }

  {  // Disk failure: SMART warnings hours ahead.
    FaultType f;
    f.name = "disk_smart";
    f.category = "disk";
    f.rate_per_day = 1.3;
    f.propagation = topo::Scope::Node;
    f.steps = {
        step(smart_warning, 0.0, 60.0, StepWhere::Initiator, 2, 4, 600.0),
        step(disk_failed, 5400.0, 1800.0),
    };
    f.terminal_step = 1;
    fc.add(std::move(f));
  }

  {  // PBS daemon crash: zero lead (Mercury's CIODB analogue).
    FaultType f;
    f.name = "pbs_crash";
    f.category = "software";
    f.rate_per_day = 0.9;
    f.propagation = topo::Scope::Node;
    f.steps = {
        step(pbs_down, 0.0, 0.5, StepWhere::Service),
        step(pbs_recover, 20.0, 5.0, StepWhere::Service),
    };
    f.terminal_step = 0;
    fc.add(std::move(f));
  }

  Scenario sc{
      .name = "mercury",
      .generator = TraceGenerator(topo::Topology::cluster(891, 32),
                                  std::move(cat), std::move(fc)),
      .config = {},
      .train_days = 4.0,
  };
  sc.config.duration_days = duration_days;
  sc.config.seed = seed;
  return sc;
}

}  // namespace elsa::simlog
