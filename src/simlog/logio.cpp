#include "simlog/logio.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace elsa::simlog {

void write_ras_log(std::ostream& os, const std::vector<LogRecord>& records,
                   const topo::Topology& topology) {
  for (const auto& r : records) {
    os << r.time_ms << '\t' << to_string(r.severity) << '\t'
       << "RAS" << '\t'
       << (r.node_id >= 0 ? topology.code(r.node_id) : std::string("SYSTEM"))
       << '\t' << r.message << '\n';
  }
}

void write_ras_log_file(const std::string& path,
                        const std::vector<LogRecord>& records,
                        const topo::Topology& topology) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_ras_log_file: cannot open " + path);
  write_ras_log(os, records, topology);
  if (!os) throw std::runtime_error("write_ras_log_file: write failed " + path);
}

std::optional<Severity> parse_severity(const std::string& s) {
  if (s == "INFO") return Severity::Info;
  if (s == "WARNING") return Severity::Warning;
  if (s == "SEVERE") return Severity::Severe;
  if (s == "FAILURE") return Severity::Failure;
  if (s == "FATAL") return Severity::Fatal;
  return std::nullopt;
}

std::optional<std::int32_t> parse_location(const std::string& code,
                                           const topo::Topology& topology) {
  if (topology.naming() == topo::NamingStyle::BlueGene) {
    // R%02d-M%d-N%02d-C:J%02d
    int rack = 0, mid = 0, card = 0, node = 0;
    if (std::sscanf(code.c_str(), "R%d-M%d-N%d-C:J%d", &rack, &mid, &card,
                    &node) == 4) {
      topo::Location loc;
      loc.rack = rack;
      loc.midplane = mid;
      loc.nodecard = card;
      loc.node = node;
      try {
        return topology.node_id(loc);
      } catch (const std::exception&) {
        return std::nullopt;
      }
    }
    return std::nullopt;
  }
  // Cluster style: <prefix><%04d flat index>. Find the trailing digit run.
  std::size_t i = code.size();
  while (i > 0 && std::isdigit(static_cast<unsigned char>(code[i - 1]))) --i;
  if (i == code.size()) return std::nullopt;
  const std::int32_t flat =
      static_cast<std::int32_t>(std::strtol(code.c_str() + i, nullptr, 10));
  if (flat < 0 || flat >= topology.total_nodes()) return std::nullopt;
  return flat;
}

ParsedLog read_ras_log(std::istream& is, const topo::Topology& topology) {
  ParsedLog out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cols = util::split_keep_empty(line, '\t');
    if (cols.size() < 5) {
      ++out.malformed_lines;
      continue;
    }
    LogRecord rec;
    char* end = nullptr;
    rec.time_ms = std::strtoll(cols[0].c_str(), &end, 10);
    const auto sev = parse_severity(cols[1]);
    if (end == cols[0].c_str() || !sev) {
      ++out.malformed_lines;
      continue;
    }
    rec.severity = *sev;
    rec.node_id = parse_location(cols[3], topology).value_or(-1);
    rec.message = cols[4];
    // Extra tabs inside the message column: rejoin.
    for (std::size_t c = 5; c < cols.size(); ++c) {
      rec.message += ' ';
      rec.message += cols[c];
    }
    out.records.push_back(std::move(rec));
  }
  return out;
}

ParsedLog read_ras_log_file(const std::string& path,
                            const topo::Topology& topology) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_ras_log_file: cannot open " + path);
  return read_ras_log(is, topology);
}

}  // namespace elsa::simlog
