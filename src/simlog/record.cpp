#include "simlog/record.hpp"

namespace elsa::simlog {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Info: return "INFO";
    case Severity::Warning: return "WARNING";
    case Severity::Severe: return "SEVERE";
    case Severity::Failure: return "FAILURE";
    case Severity::Fatal: return "FATAL";
  }
  return "?";
}

}  // namespace elsa::simlog
