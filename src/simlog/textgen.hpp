// Message-text rendering: turns catalog patterns into concrete log lines by
// substituting placeholder tokens with random values. The variability is
// what exercises the HELO template miner — constant tokens must survive
// clustering, placeholder positions must become wildcards.
#pragma once

#include <string>

#include "util/rng.hpp"

namespace elsa::simlog {

/// Substitute each whitespace-delimited placeholder token in `pattern`:
///   <num>   -> decimal integer            <hex>  -> 0x........ value
///   <loc>   -> the provided location code <ip>   -> dotted quad
///   <path>  -> unix-ish path              <word> -> random lowercase word
/// Unknown tokens pass through unchanged.
std::string render_message(const std::string& pattern, util::Rng& rng,
                           const std::string& location_code);

/// The catalog pattern with placeholders rewritten in the paper's template
/// notation: <num> -> "d+", every other placeholder -> "*". This is the
/// "true template" string HELO is expected to recover.
std::string pattern_as_template(const std::string& pattern);

}  // namespace elsa::simlog
