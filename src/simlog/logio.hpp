// Log serialisation: write traces as Blue Gene-style RAS text logs and
// parse such logs back. This is the boundary that lets the analysis
// pipeline run on *real* system logs (the CFDR corpora use close cousins
// of this layout) and lets generated campaigns be inspected with ordinary
// text tools.
//
// Line format (tab-separated, one record per line):
//   <epoch_ms> <TAB> <severity> <TAB> <component> <TAB> <location> <TAB> <message>
// where location is the node's rendered code or "SYSTEM" for service
// records. The hidden ground-truth fields (true_template, fault_id) are
// intentionally NOT serialised — a parsed log carries exactly the
// information a production log would.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "simlog/record.hpp"

namespace elsa::simlog {

/// Serialise records (time-ordered) to the RAS text format.
void write_ras_log(std::ostream& os, const std::vector<LogRecord>& records,
                   const topo::Topology& topology);

/// Convenience: to a file. Throws std::runtime_error on I/O failure.
void write_ras_log_file(const std::string& path,
                        const std::vector<LogRecord>& records,
                        const topo::Topology& topology);

struct ParsedLog {
  std::vector<LogRecord> records;  ///< node_id resolved when possible, else -1
  std::size_t malformed_lines = 0;
};

/// Parse a RAS text log. Unresolvable locations become node_id -1 (the
/// message text still carries the original code). Lines that do not parse
/// are counted, not fatal — real logs are dirty.
ParsedLog read_ras_log(std::istream& is, const topo::Topology& topology);

ParsedLog read_ras_log_file(const std::string& path,
                            const topo::Topology& topology);

/// Parse a severity name ("FAILURE"); nullopt for unknown strings.
std::optional<Severity> parse_severity(const std::string& s);

/// Resolve a rendered location code back to a node id; nullopt when the
/// code is not a node-level location of this machine.
std::optional<std::int32_t> parse_location(const std::string& code,
                                           const topo::Topology& topology);

}  // namespace elsa::simlog
