// Log-record model: the unit of data exchanged between the simulated system
// and every analysis module. Mirrors what the paper's pipeline reads from
// Blue Gene/L RAS logs: timestamp, location, severity, free-text message.
//
// Two extra fields carry *hidden ground truth* used only by the evaluation
// harness (never by the predictors): the generator's template id and the id
// of the injected fault the record belongs to.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace elsa::simlog {

/// RAS severity levels, matching Blue Gene/L's field that the paper uses to
/// separate failures from informational traffic (§IV.A).
enum class Severity : std::uint8_t { Info, Warning, Severe, Failure, Fatal };

const char* to_string(Severity s);

/// True if the severity marks an application-affecting failure. The paper's
/// ground truth for prediction is the set of FAILURE/FATAL records.
inline bool is_failure_severity(Severity s) {
  return s == Severity::Failure || s == Severity::Fatal;
}

struct LogRecord {
  std::int64_t time_ms = 0;
  /// Emitting node id, or -1 for system-level/service-node records.
  std::int32_t node_id = -1;
  Severity severity = Severity::Info;
  /// Hidden ground truth: generator template id. Analysis code must not
  /// read this; it re-derives event types through HELO.
  std::uint16_t true_template = 0;
  /// Hidden ground truth: 0 for background traffic, otherwise the id of the
  /// injected fault whose syndrome produced this record.
  std::uint32_t fault_id = 0;
  std::string message;
};

/// One injected fault: the evaluation target. `fail_time_ms` is when the
/// terminal FAILURE/FATAL record is logged; predictions must precede it.
struct GroundTruthFault {
  std::uint32_t id = 0;
  std::string category;  ///< "memory", "nodecard", "network", "cache", "io", "software"
  std::int64_t start_time_ms = 0;       ///< first symptom (possibly silent)
  std::int64_t fail_time_ms = 0;
  std::int32_t initiating_node = -1;
  std::vector<std::int32_t> affected_nodes;
  std::uint16_t terminal_template = 0;
};

/// A complete generated campaign: machine + time-ordered records + truth.
struct Trace {
  topo::Topology topology = topo::Topology::cluster(1);
  std::vector<LogRecord> records;        ///< sorted by time_ms
  std::vector<GroundTruthFault> faults;  ///< sorted by fail_time_ms
  std::int64_t t_begin_ms = 0;
  std::int64_t t_end_ms = 0;

  /// Average message rate over the whole trace, msgs/second.
  double message_rate() const {
    const double span_s =
        static_cast<double>(t_end_ms - t_begin_ms) / 1000.0;
    return span_s > 0 ? static_cast<double>(records.size()) / span_s : 0.0;
  }
};

}  // namespace elsa::simlog
