#include "simlog/catalog.hpp"

#include <stdexcept>

namespace elsa::simlog {

const char* to_string(SignalShape s) {
  switch (s) {
    case SignalShape::Periodic: return "periodic";
    case SignalShape::Noise: return "noise";
    case SignalShape::Silent: return "silent";
  }
  return "?";
}

const char* to_string(EmitterScope s) {
  switch (s) {
    case EmitterScope::PerNode: return "per-node";
    case EmitterScope::PerNodeCard: return "per-nodecard";
    case EmitterScope::PerMidplane: return "per-midplane";
    case EmitterScope::PerRack: return "per-rack";
    case EmitterScope::Service: return "service";
  }
  return "?";
}

std::uint16_t Catalog::add(EventTemplate t) {
  if (templates_.size() >= 0xffff)
    throw std::length_error("Catalog: too many templates");
  if (find(t.name))
    throw std::invalid_argument("Catalog: duplicate template name '" + t.name +
                                "'");
  t.id = static_cast<std::uint16_t>(templates_.size());
  templates_.push_back(std::move(t));
  return templates_.back().id;
}

std::optional<std::uint16_t> Catalog::find(const std::string& name) const {
  for (const auto& t : templates_)
    if (t.name == name) return t.id;
  return std::nullopt;
}

std::uint16_t Catalog::require(const std::string& name) const {
  const auto id = find(name);
  if (!id)
    throw std::invalid_argument("Catalog: unknown template '" + name + "'");
  return *id;
}

}  // namespace elsa::simlog
