// Canned evaluation campaigns mirroring the paper's two systems:
//
//   * Blue Gene/L-like (§IV): hierarchical machine, 207 event types in the
//     real logs; here a scaled 1024-node machine with the paper's marquee
//     syndromes — DDR memory cascades (Table I), node-card service chains
//     with hour-scale leads (Tables I/II), CIODB zero-lead crashes
//     (Table II), torus/network and L3-cache failures (Fig 9 categories),
//     silent-precursor node crashes, component-restart and multiline
//     benign chains (§IV.A) — plus filler event types for realistic
//     dimensionality.
//
//   * Mercury-like (NCSA cluster): flat machine, NFS storms that hit a
//     quarter of the nodes near-simultaneously (the paper's worst-case
//     8.43 s analysis window), unexpected hardware restarts, ECC and disk
//     failures.
//
// Fault mixes and rates are tuned so the *shape* of the paper's results
// emerges from the mechanics (see DESIGN.md §4); nothing in the analysis
// pipeline reads these definitions.
#pragma once

#include <cstdint>

#include "simlog/generator.hpp"

namespace elsa::simlog {

struct Scenario {
  std::string name;
  TraceGenerator generator;
  GeneratorConfig config;
  /// Offline/online split: the first `train_days` feed the offline phase.
  double train_days = 4.0;
};

/// Blue Gene/L-like campaign. `filler_templates` adds that many generic
/// background event types on top of the ~45 hand-written ones (the real
/// BG/L log had 207 distinct types).
Scenario make_bluegene_scenario(std::uint64_t seed = 2012,
                                double duration_days = 12.0,
                                int filler_templates = 110);

/// Mercury-like campaign (409 types in the real logs; scaled down here).
Scenario make_mercury_scenario(std::uint64_t seed = 2006,
                               double duration_days = 12.0,
                               int filler_templates = 130);

/// Shared helper: append `count` generic background templates with the
/// paper's class mix (silent-majority) to a catalog.
void add_filler_templates(Catalog& catalog, int count, std::uint64_t seed);

}  // namespace elsa::simlog
